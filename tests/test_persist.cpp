// Tests for the durable trigger-cache snapshot layer (src/persist/): wire
// round-trips, merge algebra, and above all the untrusted-input contract —
// truncation at every byte boundary, seeded bit flips, hostile lengths and
// checksum-forged tampering must degrade to salvage-or-cold without a crash,
// and a record the loader admits must be oracle-exact.  File-level tests
// cover atomic saves, the cache.save/cache.load torn-write fates, and the
// fleet warm-restart path end to end.

#include "persist/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ee/cache_image.hpp"
#include "ee/concurrent_cache.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"
#include "fault/injector.hpp"
#include "runner/runner.hpp"
#include "workload/workload.hpp"

namespace plee::persist {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Populates a real cache through its public lookup path (so the image holds
/// genuine canonicalization results and oracle-exact triggers) and exports.
ee::cache_image sample_image(std::uint64_t seed, int num_functions,
                             ee::canon_mode mode = ee::canon_mode::npn) {
    ee::trigger_cache cache(mode);
    for (int i = 0; i < num_functions; ++i) {
        const std::uint64_t bits = splitmix64(seed + i) & 0xFFFFull;
        const bf::truth_table master(4, bits);
        for (const std::uint32_t support : {0b0011u, 0b0110u, 0b1101u}) {
            cache.exact(master, support);
        }
    }
    return cache.export_image();
}

/// The admitted-entry correctness bar: every trigger record the loader let
/// through must equal the exact oracle — a flipped bit may cost hit rate,
/// never correctness.
void expect_admitted_triggers_exact(const load_result& res) {
    for (const auto& e : res.image.triggers) {
        const bf::truth_table master(e.num_vars, e.class_bits);
        EXPECT_EQ(ee::exact_trigger_function(master, e.support), e.trigger);
    }
}

/// Scratch directory per test; removed on teardown.
class PersistFile : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("plee_persist_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        fault::injector::instance().clear();
        std::filesystem::remove_all(dir_);
    }
    std::string path(const char* name) const { return (dir_ / name).string(); }

    std::filesystem::path dir_;
};

// --- Wire round-trips -------------------------------------------------------

TEST(PersistWire, RoundTripIsCleanAndComplete) {
    const ee::cache_image image = sample_image(1, 24);
    ASSERT_GT(image.fns.size(), 0u);
    ASSERT_GT(image.triggers.size(), 0u);

    const std::string bytes = encode_image(image);
    const load_result res = decode_image(bytes.data(), bytes.size());
    EXPECT_EQ(res.outcome, load_outcome::clean);
    EXPECT_EQ(res.loaded_fns, image.fns.size());
    EXPECT_EQ(res.loaded_triggers, image.triggers.size());
    EXPECT_EQ(res.rejected, 0u);
    EXPECT_TRUE(res.detail.empty()) << res.detail;
    EXPECT_EQ(res.verified, res.loaded_triggers);  // default verify is full
    expect_admitted_triggers_exact(res);
}

TEST(PersistWire, EmptyImageRoundTripsClean) {
    const std::string bytes = encode_image(ee::cache_image{});
    const load_result res = decode_image(bytes.data(), bytes.size());
    EXPECT_EQ(res.outcome, load_outcome::clean);
    EXPECT_EQ(res.loaded(), 0u);
}

TEST(PersistWire, SampledVerifyChecksSubset) {
    const ee::cache_image image = sample_image(2, 32);
    const std::string bytes = encode_image(image);
    load_options opts;
    opts.verify = verify_mode::sampled;
    const load_result res = decode_image(bytes.data(), bytes.size(), opts);
    EXPECT_EQ(res.outcome, load_outcome::clean);
    EXPECT_LT(res.verified, res.loaded_triggers);
}

TEST(PersistWire, VerifyModeParsing) {
    EXPECT_EQ(parse_verify_mode("off"), verify_mode::off);
    EXPECT_EQ(parse_verify_mode("sampled"), verify_mode::sampled);
    EXPECT_EQ(parse_verify_mode("full"), verify_mode::full);
    EXPECT_THROW(parse_verify_mode("paranoid"), std::invalid_argument);
}

// --- Header gates -----------------------------------------------------------

TEST(PersistWire, BadMagicColdStarts) {
    std::string bytes = encode_image(sample_image(3, 8));
    bytes[0] = 'X';
    const load_result res = decode_image(bytes.data(), bytes.size());
    EXPECT_EQ(res.outcome, load_outcome::cold);
    EXPECT_EQ(res.loaded(), 0u);
}

TEST(PersistWire, NewerSchemaVersionColdStartsCleanly) {
    std::string bytes = encode_image(sample_image(4, 8));
    // Bump the version field and re-forge the header checksum so the *only*
    // anomaly is the version: the reader must refuse bytes written by a
    // future writer even when they are pristine.
    const std::uint32_t newer = k_snapshot_schema_version + 1;
    std::memcpy(&bytes[8], &newer, 4);
    const std::uint64_t h = checksum(bytes.data(), 24);
    std::memcpy(&bytes[24], &h, 8);
    const load_result res = decode_image(bytes.data(), bytes.size());
    EXPECT_EQ(res.outcome, load_outcome::cold);
    EXPECT_EQ(res.loaded(), 0u);
    EXPECT_NE(res.detail.find("version"), std::string::npos) << res.detail;
}

TEST(PersistWire, CanonModeMismatchColdStarts) {
    const ee::cache_image image = sample_image(5, 8, ee::canon_mode::p);
    const std::string bytes = encode_image(image);
    load_options opts;  // expected_mode defaults to npn
    const load_result res = decode_image(bytes.data(), bytes.size(), opts);
    EXPECT_EQ(res.outcome, load_outcome::cold);
    EXPECT_EQ(res.loaded(), 0u);
}

// --- The torture matrix -----------------------------------------------------

TEST(PersistTorture, TruncationAtEveryByteSalvagesOrColdStarts) {
    const ee::cache_image image = sample_image(6, 12);
    const std::string bytes = encode_image(image);
    const std::uint64_t total = image.entries();

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const load_result res = decode_image(bytes.data(), len);
        EXPECT_NE(res.outcome, load_outcome::clean)
            << "truncation to " << len << " bytes decoded clean";
        EXPECT_LE(res.loaded(), total);
        if (len < k_header_size) {
            EXPECT_EQ(res.outcome, load_outcome::cold) << "at length " << len;
        }
        if (res.loaded() > 0) {
            EXPECT_EQ(res.outcome, load_outcome::salvaged) << "at length " << len;
        }
        expect_admitted_triggers_exact(res);
    }
    // The full file still decodes clean (the loop above never mutated it).
    EXPECT_EQ(decode_image(bytes.data(), bytes.size()).outcome,
              load_outcome::clean);
}

TEST(PersistTorture, SeededBitFlipsNeverCrashOrCorrupt) {
    const ee::cache_image image = sample_image(7, 12);
    const std::string clean_bytes = encode_image(image);
    const std::uint64_t total = image.entries();

    for (std::uint64_t trial = 0; trial < 96; ++trial) {
        std::string bytes = clean_bytes;
        const std::uint64_t bit =
            splitmix64(0xf11aull + trial) % (bytes.size() * 8);
        bytes[bit / 8] = static_cast<char>(bytes[bit / 8] ^ (1u << (bit % 8)));

        const load_result res = decode_image(bytes.data(), bytes.size());
        // Every byte is covered by the header, record or footer checksum
        // except the framing length fields, whose damage breaks framing —
        // a single flipped bit can therefore never decode clean.
        EXPECT_NE(res.outcome, load_outcome::clean) << "flipped bit " << bit;
        EXPECT_LE(res.loaded(), total);
        expect_admitted_triggers_exact(res);
    }
}

TEST(PersistTorture, HostileLengthFieldSalvagesPrefix) {
    const ee::cache_image image = sample_image(8, 12);
    std::string bytes = encode_image(image);
    // Overwrite the first record's payload length with a huge value: the
    // claimed extent runs past EOF and past the length cap.  Framing is
    // unrecoverable at that point, but the damage is at record 0 — the
    // loader must stop without crashing and report a non-clean outcome.
    const std::uint32_t hostile = 0xFFFFFFFFu;
    std::memcpy(&bytes[k_header_size], &hostile, 4);
    const load_result res = decode_image(bytes.data(), bytes.size());
    EXPECT_NE(res.outcome, load_outcome::clean);
    EXPECT_EQ(res.loaded(), 0u);
    expect_admitted_triggers_exact(res);

    // A *plausible* wrong length (small, in-bounds) must at worst drop the
    // records it mis-frames: the loader re-syncs or stops, never crashes.
    std::string bytes2 = encode_image(image);
    const std::uint32_t shifted = 8;
    std::memcpy(&bytes2[k_header_size], &shifted, 4);
    const load_result res2 = decode_image(bytes2.data(), bytes2.size());
    EXPECT_NE(res2.outcome, load_outcome::clean);
    EXPECT_LE(res2.loaded(), image.entries());
    expect_admitted_triggers_exact(res2);
}

TEST(PersistTorture, TrailingGarbageAfterFooterIsDamage) {
    const ee::cache_image image = sample_image(9, 8);
    std::string bytes = encode_image(image);
    bytes += "garbage";
    const load_result res = decode_image(bytes.data(), bytes.size());
    EXPECT_NE(res.outcome, load_outcome::clean);
    expect_admitted_triggers_exact(res);
}

// A tampered trigger whose record checksum has been *re-forged* passes every
// integrity gate — only the oracle re-verification can catch it.  This is
// the test that justifies verify_mode::full as the default.
TEST(PersistTorture, ForgedChecksumTamperCaughtByOracleOnly) {
    const ee::cache_image image = sample_image(10, 12);
    std::string bytes = encode_image(image);

    // Walk the frames to the first trigger record.
    std::size_t off = k_header_size;
    std::size_t trig_off = 0;
    while (off + 5 <= bytes.size()) {
        std::uint32_t len;
        std::memcpy(&len, &bytes[off], 4);
        const std::uint8_t type = static_cast<std::uint8_t>(bytes[off + 4]);
        if (type == 2) {
            trig_off = off;
            break;
        }
        off += 4 + 1 + len + 8;
    }
    ASSERT_NE(trig_off, 0u) << "no trigger record found";

    std::uint32_t len;
    std::memcpy(&len, &bytes[trig_off], 4);
    // Payload layout: u8 nv, u8 tv, u8 pad[2], u32 support,
    // class_bits[words_for(nv)], trig_bits[words_for(tv)].  Flip the lowest
    // bit of the trigger table — in-range for any arity, so field bounds
    // stay satisfied and only the oracle can notice.
    const std::size_t payload = trig_off + 5;
    const int nv = static_cast<std::uint8_t>(bytes[payload]);
    const std::size_t trig_bits_off = payload + 8 + 8 * bf::words_for(nv);
    bytes[trig_bits_off] = static_cast<char>(bytes[trig_bits_off] ^ 1u);

    // Forge the record checksum over (type byte + payload)...
    const std::uint64_t rec_sum = checksum(&bytes[trig_off + 4], 1 + len);
    std::memcpy(&bytes[trig_off + 4 + 1 + len], &rec_sum, 8);

    // ...and the footer: last record, payload = file checksum over all bytes
    // before the footer + record count.
    std::size_t footer_off = k_header_size;
    while (true) {
        std::uint32_t flen;
        std::memcpy(&flen, &bytes[footer_off], 4);
        if (static_cast<std::uint8_t>(bytes[footer_off + 4]) == 255) break;
        footer_off += 4 + 1 + flen + 8;
        ASSERT_LT(footer_off + 5, bytes.size());
    }
    const std::uint64_t file_sum = checksum(bytes.data(), footer_off);
    std::memcpy(&bytes[footer_off + 5], &file_sum, 8);
    const std::uint64_t foot_sum = checksum(&bytes[footer_off + 4], 1 + 16);
    std::memcpy(&bytes[footer_off + 4 + 1 + 16], &foot_sum, 8);

    // verify=off admits the forged record: integrity checks all pass.
    load_options off_opts;
    off_opts.verify = verify_mode::off;
    const load_result lax = decode_image(bytes.data(), bytes.size(), off_opts);
    EXPECT_EQ(lax.outcome, load_outcome::clean);
    EXPECT_EQ(lax.rejected, 0u);

    // verify=full rejects exactly the tampered record.
    const load_result strict = decode_image(bytes.data(), bytes.size());
    EXPECT_EQ(strict.outcome, load_outcome::salvaged);
    EXPECT_EQ(strict.rejected, 1u);
    EXPECT_EQ(strict.loaded(), image.entries() - 1);
    expect_admitted_triggers_exact(strict);
}

// --- Merge algebra ----------------------------------------------------------

TEST(PersistMerge, UnionIsOrderIndependent) {
    const ee::cache_image a = sample_image(11, 10);
    const ee::cache_image b = sample_image(12, 10);

    ee::trigger_cache ab;
    ab.merge_from_snapshot(a);
    ab.merge_from_snapshot(b);
    ee::trigger_cache ba;
    ba.merge_from_snapshot(b);
    ba.merge_from_snapshot(a);
    EXPECT_EQ(ab.size(), ba.size());
    EXPECT_EQ(ab.canonicalized_masters(), ba.canonicalized_masters());

    // Merging an image into a cache that already holds it is a no-op union.
    ee::trigger_cache twice;
    twice.merge_from_snapshot(a);
    const std::size_t once = twice.size();
    twice.merge_from_snapshot(a);
    EXPECT_EQ(twice.size(), once);

    // Every master from either source now hits without a single miss.
    for (const std::uint64_t seed : {11ull, 12ull}) {
        for (int i = 0; i < 10; ++i) {
            const bf::truth_table master(4, splitmix64(seed + i) & 0xFFFFull);
            for (const std::uint32_t support : {0b0011u, 0b0110u, 0b1101u}) {
                EXPECT_EQ(ab.exact(master, support),
                          ee::exact_trigger_function(master, support));
            }
        }
    }
    EXPECT_EQ(ab.misses(), 0u);
}

TEST(PersistMerge, ModeMismatchThrowsLogicError) {
    const ee::cache_image p_image = sample_image(13, 4, ee::canon_mode::p);
    ee::trigger_cache npn_cache(ee::canon_mode::npn);
    EXPECT_THROW(npn_cache.merge_from_snapshot(p_image), std::logic_error);
}

TEST(PersistMerge, ConcurrentMergeDuringLookups) {
    // TSan witness: one thread merges a snapshot into the shared cache while
    // three others hammer lookups over an overlapping key set.
    const ee::cache_image image = sample_image(14, 32);
    ee::concurrent_trigger_cache cache;
    std::vector<std::thread> threads;
    threads.emplace_back([&] { cache.merge_from_snapshot(image); });
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 32; ++i) {
                const bf::truth_table master(
                    4, splitmix64(14 + (i + t) % 32) & 0xFFFFull);
                EXPECT_EQ(cache.exact(master, 0b0110u),
                          ee::exact_trigger_function(master, 0b0110u));
            }
        });
    }
    for (std::thread& t : threads) t.join();
}

// --- Files, atomicity, fault fates ------------------------------------------

TEST_F(PersistFile, SaveThenLoadIsClean) {
    const ee::cache_image image = sample_image(15, 16);
    const std::string snap = path("cache.snap");
    save_snapshot(snap, image);

    const load_result res = load_snapshot(snap);
    EXPECT_EQ(res.outcome, load_outcome::clean);
    EXPECT_EQ(res.loaded(), image.entries());
    // The temp file was renamed away, not left behind.
    std::size_t files = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(PersistFile, MissingFileColdStartsWithoutThrowing) {
    const load_result res = load_snapshot(path("never_written.snap"));
    EXPECT_EQ(res.outcome, load_outcome::cold);
    EXPECT_EQ(res.loaded(), 0u);
    EXPECT_FALSE(res.detail.empty());
}

TEST_F(PersistFile, SaveToBadDirectoryThrowsSnapshotError) {
    const ee::cache_image image = sample_image(16, 4);
    try {
        save_snapshot(path("no/such/dir/cache.snap"), image);
        FAIL() << "save into a missing directory succeeded";
    } catch (const snapshot_error& e) {
        EXPECT_EQ(e.classify(), failure_class::transient);
    }
}

TEST_F(PersistFile, FailedSaveNeverClobbersGoodSnapshot) {
    const std::string snap = path("cache.snap");
    save_snapshot(snap, sample_image(17, 16));
    const load_result before = load_snapshot(snap);
    ASSERT_EQ(before.outcome, load_outcome::clean);

    // Arm a throwing fate on the save point: the save must fail *before*
    // touching the committed file.
    fault::injector& inj = fault::injector::instance();
    inj.configure("seed=1;cache.save=1");
    EXPECT_THROW(save_snapshot(snap, sample_image(18, 4)), plee_error);
    inj.clear();

    const load_result after = load_snapshot(snap);
    EXPECT_EQ(after.outcome, load_outcome::clean);
    EXPECT_EQ(after.loaded(), before.loaded());
}

TEST_F(PersistFile, TornSaveFateYieldsSalvageableFile) {
    const ee::cache_image image = sample_image(19, 16);
    const std::string snap = path("torn.snap");
    fault::injector& inj = fault::injector::instance();
    inj.configure("seed=9;cache.save=1:torn");
    // Torn is data corruption, not failure: the save itself must succeed.
    EXPECT_NO_THROW(save_snapshot(snap, image));
    inj.clear();

    const load_result res = load_snapshot(snap);
    EXPECT_NE(res.outcome, load_outcome::clean);
    EXPECT_LE(res.loaded(), image.entries());
    expect_admitted_triggers_exact(res);
}

TEST_F(PersistFile, TornLoadFateTruncatesTheRead) {
    const ee::cache_image image = sample_image(20, 16);
    const std::string snap = path("good.snap");
    save_snapshot(snap, image);

    fault::injector& inj = fault::injector::instance();
    inj.configure("seed=4;cache.load=1:torn");
    const load_result torn = load_snapshot(snap);
    inj.clear();
    EXPECT_NE(torn.outcome, load_outcome::clean);
    EXPECT_LE(torn.loaded(), image.entries());

    // The file itself is intact — only the read was torn.
    EXPECT_EQ(load_snapshot(snap).outcome, load_outcome::clean);
}

// --- Fleet warm restart ------------------------------------------------------

TEST_F(PersistFile, FleetWarmRestartIsBitIdenticalAndFullyWarm) {
    const std::string snap = path("fleet.snap");
    std::vector<runner::fleet_job> jobs;
    for (const std::uint64_t seed : {1ull, 2ull}) {
        runner::fleet_job job;
        job.id = "wl" + std::to_string(seed);
        job.netlist = wl::generate(
            wl::scenario_params(wl::scenario::random_dag, 40, seed));
        jobs.push_back(std::move(job));
    }

    runner::fleet_options cold;
    cold.num_threads = 2;
    cold.experiment.measure.num_vectors = 25;
    cold.cache_save_path = snap;
    const runner::fleet_result a = runner::run_fleet(jobs, cold);
    ASSERT_TRUE(a.all_ok());
    ASSERT_TRUE(a.cache_save_error.empty()) << a.cache_save_error;
    ASSERT_GT(a.cache_misses, 0u);

    runner::fleet_options warm = cold;
    warm.cache_save_path.clear();
    warm.cache_load_path = snap;
    const runner::fleet_result b = runner::run_fleet(jobs, warm);
    ASSERT_TRUE(b.all_ok());
    EXPECT_EQ(b.cache_load_outcome, "clean");
    EXPECT_GT(b.cache_loaded, 0u);
    EXPECT_EQ(b.cache_salvaged, 0u);
    EXPECT_EQ(b.cache_rejected, 0u);
    // Every lookup the cold run missed is a warm hit now.
    EXPECT_EQ(b.cache_misses, 0u);

    // Semantic results are bit-identical; only wall-clock figures may move.
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const report::experiment_row& x = a.results[i].row;
        const report::experiment_row& y = b.results[i].row;
        EXPECT_EQ(x.pl_gates, y.pl_gates);
        EXPECT_EQ(x.ee_gates, y.ee_gates);
        EXPECT_EQ(x.delay_no_ee, y.delay_no_ee);
        EXPECT_EQ(x.delay_ee, y.delay_ee);
        EXPECT_EQ(x.ee_detail.triggers_added, y.ee_detail.triggers_added);
    }
}

TEST_F(PersistFile, FleetSurvivesCorruptSnapshotAndRequiresSharedCache) {
    const std::string snap = path("corrupt.snap");
    // A snapshot of pure garbage: the fleet must run cold, not fail.
    atomic_write_text(snap, "this is not a snapshot");

    std::vector<runner::fleet_job> jobs;
    runner::fleet_job job;
    job.id = "wl1";
    job.netlist =
        wl::generate(wl::scenario_params(wl::scenario::random_dag, 30, 1));
    jobs.push_back(std::move(job));

    runner::fleet_options opts;
    opts.experiment.measure.num_vectors = 10;
    opts.cache_load_path = snap;
    const runner::fleet_result res = runner::run_fleet(jobs, opts);
    EXPECT_TRUE(res.all_ok());
    EXPECT_EQ(res.cache_load_outcome, "cold");
    EXPECT_EQ(res.cache_loaded, 0u);

    // Cache persistence without a shared cache is a contradiction the
    // runner rejects up front.
    runner::fleet_options bad = opts;
    bad.share_trigger_cache = false;
    EXPECT_THROW(runner::run_fleet(jobs, bad), std::invalid_argument);
}

}  // namespace
}  // namespace plee::persist
