// Tests for the sharded fleet runner: bit-identical results against the
// serial single-circuit pipeline on b05/b07/b10 at several thread counts
// (with and without the shared trigger cache), aggregate accounting,
// cross-circuit cache reuse, and error propagation.

#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bench_circuits/itc99.hpp"
#include "report/json.hpp"
#include "workload/workload.hpp"

namespace plee::runner {
namespace {

report::experiment_options fast_options() {
    report::experiment_options opts;
    opts.measure.num_vectors = 25;
    return opts;
}

/// Every field that the pipeline determines (as opposed to measures in
/// wall-clock time) must agree exactly — delays included, since the
/// simulator is deterministic given the stimulus seed.
void expect_rows_identical(const report::experiment_row& a,
                           const report::experiment_row& b,
                           const std::string& label) {
    EXPECT_EQ(a.pl_gates, b.pl_gates) << label;
    EXPECT_EQ(a.ee_gates, b.ee_gates) << label;
    EXPECT_EQ(a.delay_no_ee, b.delay_no_ee) << label;
    EXPECT_EQ(a.delay_ee, b.delay_ee) << label;
    EXPECT_EQ(a.ee_detail.triggers_added, b.ee_detail.triggers_added) << label;
    ASSERT_EQ(a.ee_detail.applied.size(), b.ee_detail.applied.size()) << label;
    for (std::size_t i = 0; i < a.ee_detail.applied.size(); ++i) {
        const ee::applied_trigger& x = a.ee_detail.applied[i];
        const ee::applied_trigger& y = b.ee_detail.applied[i];
        EXPECT_EQ(x.master, y.master) << label;
        EXPECT_EQ(x.trigger, y.trigger) << label;
        EXPECT_EQ(x.candidate.support, y.candidate.support) << label;
        EXPECT_EQ(x.candidate.function, y.candidate.function) << label;
    }
}

TEST(FleetRunner, BitIdenticalToSerialPipelineAtAnyThreadCount) {
    const std::vector<std::string> ids = {"b05", "b07", "b10"};
    std::vector<fleet_job> jobs;
    std::vector<report::experiment_row> serial;
    for (const std::string& id : ids) {
        fleet_job job;
        job.id = id;
        job.description = id;
        job.netlist = bench::build_benchmark(id);
        serial.push_back(
            report::run_ee_experiment(id, job.netlist, fast_options()));
        jobs.push_back(std::move(job));
    }

    for (unsigned threads : {1u, 2u, 5u}) {
        for (bool share : {true, false}) {
            fleet_options opts;
            opts.num_threads = threads;
            opts.share_trigger_cache = share;
            opts.experiment = fast_options();
            const fleet_result fleet = run_fleet(jobs, opts);
            ASSERT_EQ(fleet.results.size(), ids.size());
            for (std::size_t i = 0; i < ids.size(); ++i) {
                EXPECT_EQ(fleet.results[i].id, ids[i]);
                expect_rows_identical(
                    fleet.results[i].row, serial[i],
                    ids[i] + " threads=" + std::to_string(threads) +
                        " share=" + std::to_string(share));
            }
        }
    }
}

TEST(FleetRunner, AggregatesMatchTheRows) {
    std::vector<fleet_job> jobs;
    for (int i = 0; i < 3; ++i) {
        fleet_job job;
        job.id = "w" + std::to_string(i);
        job.description = job.id;
        job.netlist = wl::generate(wl::scenario_params(
            wl::scenario::random_dag, 50, 100 + static_cast<std::uint64_t>(i)));
        jobs.push_back(std::move(job));
    }
    fleet_options opts;
    opts.num_threads = 2;
    opts.experiment.measure.num_vectors = 5;
    const fleet_result fleet = run_fleet(jobs, opts);

    std::size_t pl = 0, ee = 0, sweeps = 0;
    for (const job_result& r : fleet.results) {
        pl += r.row.pl_gates;
        ee += r.row.ee_gates;
        sweeps += r.row.ee_detail.masters_considered;
        EXPECT_GE(r.wall_ms, 0.0);
    }
    EXPECT_EQ(fleet.total_pl_gates, pl);
    EXPECT_EQ(fleet.total_ee_gates, ee);
    EXPECT_EQ(fleet.total_sweeps, sweeps);
    EXPECT_EQ(fleet.threads, 2u);
    EXPECT_GT(fleet.wall_ms, 0.0);
    EXPECT_GT(fleet.netlists_per_s(), 0.0);
    EXPECT_GT(fleet.sweeps_per_s(), 0.0);
    EXPECT_GE(fleet.cache_hit_rate(), 0.0);
    EXPECT_LE(fleet.cache_hit_rate(), 1.0);
    // Shared-cache mode reports the fleet-level counters, and something was
    // actually memoized.
    EXPECT_GT(fleet.cache_hits + fleet.cache_misses, 0u);

    const report::json j = to_json(fleet);
    const std::string dump = j.dump();
    EXPECT_NE(dump.find("\"netlists_per_s\""), std::string::npos);
    EXPECT_NE(dump.find("\"cache_hit_rate\""), std::string::npos);
    EXPECT_NE(dump.find("\"rows\""), std::string::npos);
}

TEST(FleetRunner, SharedCacheServesEveryCircuitFromOneMemo) {
    // Two copies of the same circuit: with the shared cache the second copy
    // must add zero misses — every class was canonicalized and solved once.
    fleet_job job;
    job.id = "w";
    job.description = "w";
    job.netlist =
        wl::generate(wl::scenario_params(wl::scenario::datapath_like, 80, 21));

    fleet_options opts;
    opts.num_threads = 1;
    opts.experiment.measure.num_vectors = 2;
    const fleet_result one = run_fleet({job}, opts);

    const fleet_result two = run_fleet({job, job}, opts);
    EXPECT_EQ(two.cache_misses, one.cache_misses);
    EXPECT_GT(two.cache_hits, one.cache_hits);

    // Without sharing, both copies pay their own misses.
    opts.share_trigger_cache = false;
    const fleet_result isolated = run_fleet({job, job}, opts);
    EXPECT_EQ(isolated.cache_misses, 2 * one.cache_misses);
}

/// A job whose netlist fails validation at the mapping stage.
fleet_job malformed_job(const std::string& id) {
    fleet_job bad;
    bad.id = id;
    bad.description = "dangling dff";
    bad.netlist.add_input("a");
    bad.netlist.add_dff(nl::k_invalid_cell, false);  // never connected
    return bad;
}

TEST(FleetRunner, GracefulDegradationKeepsSurvivors) {
    fleet_job good;
    good.id = "ok";
    good.description = "ok";
    good.netlist = wl::generate(wl::scenario_params(wl::scenario::random_dag, 20, 1));
    const fleet_job bad = malformed_job("bad");

    fleet_options opts;
    opts.experiment.measure.num_vectors = 5;
    const fleet_result fleet = run_fleet({good, bad}, opts);

    ASSERT_EQ(fleet.results.size(), 2u);
    EXPECT_EQ(fleet.results[0].status, job_status::ok);
    EXPECT_TRUE(fleet.results[0].error.empty());
    EXPECT_EQ(fleet.results[1].status, job_status::failed);
    EXPECT_FALSE(fleet.results[1].error.empty());
    EXPECT_EQ(fleet.results[1].attempts, 1u);  // validation errors are permanent

    EXPECT_FALSE(fleet.all_ok());
    EXPECT_EQ(fleet.jobs_ok, 1u);
    EXPECT_EQ(fleet.jobs_failed, 1u);
    EXPECT_EQ(fleet.jobs_timed_out, 0u);
    EXPECT_EQ(fleet.jobs_retried, 0u);

    // The failed job's default-initialized row stays out of the aggregates.
    EXPECT_EQ(fleet.total_pl_gates, fleet.results[0].row.pl_gates);
    EXPECT_EQ(fleet.total_ee_gates, fleet.results[0].row.ee_gates);

    const std::string dump = to_json(fleet).dump();
    EXPECT_NE(dump.find("\"jobs_failed\": 1"), std::string::npos);
    EXPECT_NE(dump.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(dump.find("\"error\""), std::string::npos);
}

TEST(FleetRunner, FailFastRestoresThrowingContract) {
    fleet_job good;
    good.id = "ok";
    good.description = "ok";
    good.netlist = wl::generate(wl::scenario_params(wl::scenario::random_dag, 20, 1));
    fleet_options opts;
    opts.fail_fast = true;
    EXPECT_THROW(run_fleet({good, malformed_job("bad")}, opts), std::exception);
}

TEST(FleetRunner, FailingJobsDoNotPerturbSurvivorRows) {
    // The fleet-integrity matrix: two healthy benchmark jobs ride alongside a
    // job that exhausts its (per-job) simulator event budget mid-measurement
    // and a job that fails validation outright.  At every thread count, with
    // and without the shared trigger cache, the fleet must return all four
    // results, classify exactly the two bad jobs as non-ok, and leave the
    // survivors' rows bit-identical to the serial single-circuit pipeline.
    const std::vector<std::string> ids = {"b05", "b07"};
    std::vector<fleet_job> jobs;
    std::vector<report::experiment_row> serial;
    for (const std::string& id : ids) {
        fleet_job job;
        job.id = id;
        job.description = id;
        job.netlist = bench::build_benchmark(id);
        serial.push_back(
            report::run_ee_experiment(id, job.netlist, fast_options()));
        jobs.push_back(std::move(job));
    }
    fleet_job starved;  // trips sim::budget_exhausted in the baseline measure
    starved.id = "starved";
    starved.description = "starved";
    starved.netlist = bench::build_benchmark("b10");
    starved.max_events = 50;
    jobs.push_back(std::move(starved));
    jobs.push_back(malformed_job("bad"));

    // Reference entry count for a shared cache fed only by the survivors:
    // both bad jobs die before their EE search runs, so they must not add a
    // single (bogus or otherwise) entry to the shared memo.
    fleet_options clean_opts;
    clean_opts.num_threads = 1;
    clean_opts.experiment = fast_options();
    const fleet_result clean =
        run_fleet({jobs[0], jobs[1]}, clean_opts);
    ASSERT_TRUE(clean.all_ok());

    for (unsigned threads : {1u, 2u, 5u}) {
        for (bool share : {true, false}) {
            fleet_options opts;
            opts.num_threads = threads;
            opts.share_trigger_cache = share;
            opts.experiment = fast_options();
            const fleet_result fleet = run_fleet(jobs, opts);
            const std::string label = "threads=" + std::to_string(threads) +
                                      " share=" + std::to_string(share);

            ASSERT_EQ(fleet.results.size(), jobs.size()) << label;
            EXPECT_EQ(fleet.jobs_ok, 2u) << label;
            EXPECT_EQ(fleet.jobs_budget_exhausted, 1u) << label;
            EXPECT_EQ(fleet.jobs_failed, 1u) << label;
            EXPECT_EQ(fleet.results[2].status, job_status::budget_exhausted)
                << label;
            // Typed context: circuit id, event count and queue kind in what().
            EXPECT_NE(fleet.results[2].error.find("starved"), std::string::npos)
                << fleet.results[2].error;
            EXPECT_NE(fleet.results[2].error.find("event budget exhausted"),
                      std::string::npos)
                << fleet.results[2].error;
            EXPECT_EQ(fleet.results[3].status, job_status::failed) << label;
            for (std::size_t i = 0; i < ids.size(); ++i) {
                EXPECT_EQ(fleet.results[i].status, job_status::ok) << label;
                expect_rows_identical(fleet.results[i].row, serial[i],
                                      ids[i] + " " + label);
            }
            if (share) {
                EXPECT_EQ(fleet.cache_entries, clean.cache_entries) << label;
            }
        }
    }
}

TEST(FleetRunner, EmptyFleetIsANoop) {
    const fleet_result fleet = run_fleet({}, fleet_options{});
    EXPECT_TRUE(fleet.results.empty());
    EXPECT_EQ(fleet.netlists_per_s(), 0.0);
}

}  // namespace
}  // namespace plee::runner
