// Unit tests for the PL netlist container itself: gate/edge construction
// rules, trigger attachment wiring, arrival-depth analysis, statistics and
// the marked-graph image.

#include "plogic/pl_netlist.hpp"

#include <gtest/gtest.h>

namespace plee::pl {
namespace {

bf::truth_table and2() {
    return bf::truth_table::variable(2, 0) & bf::truth_table::variable(2, 1);
}

/// source -> g1(and) -> g2(not) -> sink, with conservative acks.
struct chain_fixture {
    pl_netlist pl;
    gate_id src_a, src_b, g1, g2, snk;

    chain_fixture() {
        src_a = pl.add_gate(gate_kind::source, "a");
        src_b = pl.add_gate(gate_kind::source, "b");
        g1 = pl.add_gate(gate_kind::compute, "g1");
        pl.set_function(g1, and2());
        g2 = pl.add_gate(gate_kind::compute, "g2");
        pl.set_function(g2, ~bf::truth_table::variable(1, 0));
        snk = pl.add_gate(gate_kind::sink, "y");

        pl.add_data_edge(src_a, g1, 0, false, false);
        pl.add_data_edge(src_b, g1, 1, false, false);
        pl.add_data_edge(g1, g2, 0, false, false);
        pl.add_data_edge(g2, snk, 0, false, false);
        pl.add_ack_edge(g1, src_a, true);
        pl.add_ack_edge(g1, src_b, true);
        pl.add_ack_edge(g2, g1, true);
        pl.add_ack_edge(snk, g2, true);
    }
};

TEST(PlNetlist, CountsAndAccessors) {
    chain_fixture f;
    EXPECT_EQ(f.pl.num_gates(), 5u);
    EXPECT_EQ(f.pl.num_edges(), 8u);
    EXPECT_EQ(f.pl.num_pl_gates(), 2u);  // compute gates only here
    EXPECT_EQ(f.pl.num_trigger_gates(), 0u);
    EXPECT_EQ(f.pl.num_ack_edges(), 4u);
    EXPECT_EQ(f.pl.sources().size(), 2u);
    EXPECT_EQ(f.pl.sinks().size(), 1u);
    EXPECT_EQ(f.pl.gate(f.g1).data_in.size(), 2u);
}

TEST(PlNetlist, VerifiesLiveAndSafe) {
    chain_fixture f;
    const mg_report r = f.pl.verify();
    EXPECT_TRUE(r.ok()) << r.violation;
}

TEST(PlNetlist, ArrivalDepthOfChain) {
    chain_fixture f;
    const std::vector<int> depth = f.pl.arrival_depth();
    EXPECT_EQ(depth[f.src_a], 0);
    EXPECT_EQ(depth[f.g1], 1);
    EXPECT_EQ(depth[f.g2], 2);
    EXPECT_EQ(depth[f.snk], 2);  // observed output depth
}

TEST(PlNetlist, PinOrderingEnforced) {
    pl_netlist pl;
    const gate_id s = pl.add_gate(gate_kind::source, "s");
    const gate_id g = pl.add_gate(gate_kind::compute, "g");
    pl.set_function(g, and2());
    // Pin 1 before pin 0 must be rejected.
    EXPECT_THROW(pl.add_data_edge(s, g, 1, false, false), std::invalid_argument);
}

TEST(PlNetlist, FunctionOnlyOnLutGates) {
    pl_netlist pl;
    const gate_id s = pl.add_gate(gate_kind::source, "s");
    EXPECT_THROW(pl.set_function(s, and2()), std::invalid_argument);
    const gate_id c = pl.add_gate(gate_kind::const_source, "k");
    EXPECT_NO_THROW(pl.set_const_value(c, true));
    EXPECT_THROW(pl.set_const_value(s, true), std::invalid_argument);
}

TEST(PlNetlist, AttachTriggerWiring) {
    chain_fixture f;
    // g1 is a 2-input master; trigger over pin 0 with function NOT(x).
    const bf::truth_table kill = ~bf::truth_table::variable(1, 0);
    const gate_id trig = f.pl.attach_trigger(f.g1, kill, 0b01);

    const pl_gate& master = f.pl.gate(f.g1);
    const pl_gate& trigger = f.pl.gate(trig);
    EXPECT_EQ(master.trigger, trig);
    EXPECT_EQ(trigger.master, f.g1);
    EXPECT_EQ(trigger.kind, gate_kind::trigger);
    EXPECT_EQ(trigger.trigger_support, 0b01u);
    ASSERT_EQ(trigger.data_in.size(), 1u);
    // The trigger taps the same producer as master pin 0.
    EXPECT_EQ(f.pl.edge(trigger.data_in[0]).from,
              f.pl.edge(master.data_in[0]).from);
    // efire edge runs trigger -> master and is not a LUT pin.
    ASSERT_NE(master.efire_in, k_invalid_edge);
    EXPECT_EQ(f.pl.edge(master.efire_in).from, trig);
    EXPECT_EQ(f.pl.edge(master.efire_in).to_pin, -1);
    EXPECT_EQ(master.data_in.size(), 2u);  // pins unchanged

    // The pairing keeps the marked graph healthy.
    EXPECT_TRUE(f.pl.verify().ok());
    EXPECT_EQ(f.pl.num_trigger_gates(), 1u);
    EXPECT_EQ(f.pl.num_pl_gates(), 2u);  // EE gates counted separately
}

TEST(PlNetlist, AttachTriggerRejectsBadRequests) {
    chain_fixture f;
    const bf::truth_table kill = ~bf::truth_table::variable(1, 0);
    // Arity mismatch: 1-var function for a 2-pin support.
    EXPECT_THROW(f.pl.attach_trigger(f.g1, kill, 0b11), std::invalid_argument);
    // Non-compute master.
    EXPECT_THROW(f.pl.attach_trigger(f.src_a, kill, 0b01), std::invalid_argument);
    // Double attachment.
    f.pl.attach_trigger(f.g1, kill, 0b01);
    EXPECT_THROW(f.pl.attach_trigger(f.g1, kill, 0b01), std::logic_error);
}

TEST(PlNetlist, TriggerDeepensArrivalOfMaster) {
    chain_fixture f;
    const std::vector<int> before = f.pl.arrival_depth();
    const bf::truth_table kill = ~bf::truth_table::variable(1, 0);
    const gate_id trig = f.pl.attach_trigger(f.g1, kill, 0b01);
    const std::vector<int> after = f.pl.arrival_depth();
    // The trigger is a depth-1 gate (fed by sources); the master now also
    // waits for the efire token in the static model.
    EXPECT_EQ(after[trig], 1);
    EXPECT_GE(after[f.g1], before[f.g1]);
}

TEST(PlNetlist, MarkedGraphImageMirrorsTokens) {
    chain_fixture f;
    const marked_graph mg = f.pl.to_marked_graph();
    EXPECT_EQ(mg.num_nodes(), f.pl.num_gates());
    EXPECT_EQ(mg.num_edges(), f.pl.num_edges());
    int marked = 0;
    for (const mg_edge& e : mg.edges()) marked += e.tokens;
    EXPECT_EQ(marked, 4);  // the four initial ack tokens
}

TEST(PlNetlist, DotOutputContainsTriggersAsDiamonds) {
    chain_fixture f;
    f.pl.attach_trigger(f.g1, ~bf::truth_table::variable(1, 0), 0b01);
    const std::string dot = f.pl.to_dot();
    EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
    EXPECT_NE(dot.find("label=\"*\""), std::string::npos);  // initial tokens
}

TEST(PlNetlist, EdgeRangeChecks) {
    pl_netlist pl;
    const gate_id s = pl.add_gate(gate_kind::source, "s");
    EXPECT_THROW(pl.add_data_edge(s, 42, 0, false, false), std::invalid_argument);
    EXPECT_THROW(pl.add_ack_edge(42, s, false), std::invalid_argument);
}

TEST(PlNetlist, KindNames) {
    EXPECT_STREQ(to_string(gate_kind::compute), "compute");
    EXPECT_STREQ(to_string(gate_kind::trigger), "trigger");
    EXPECT_STREQ(to_string(gate_kind::through), "through");
}

}  // namespace
}  // namespace plee::pl
