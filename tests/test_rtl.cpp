// Tests for the RTL component library: every bus operator is compared
// against plain C++ arithmetic through the full synthesis (LUT4 mapping +
// cleanup) and the synchronous simulator.

#include "synth/rtl.hpp"

#include <gtest/gtest.h>

#include "netlist/sync_sim.hpp"

namespace plee::syn {
namespace {

std::vector<bool> to_bits(std::uint64_t value, int width) {
    std::vector<bool> bits;
    for (int i = 0; i < width; ++i) bits.push_back((value >> i) & 1u);
    return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits, std::size_t offset,
                        std::size_t width) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
        if (bits[offset + i]) v |= std::uint64_t{1} << i;
    }
    return v;
}

TEST(Rtl, AdderMatchesArithmetic) {
    module_builder m("add8");
    const bus a = m.input_bus("a", 8);
    const bus b = m.input_bus("b", 8);
    const auto r = m.add(a, b);
    m.output_bus("sum", r.sum);
    m.output("carry", r.carry);
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    for (std::uint32_t av : {0u, 1u, 77u, 128u, 200u, 255u}) {
        for (std::uint32_t bv : {0u, 3u, 55u, 127u, 255u}) {
            std::vector<bool> in = to_bits(av, 8);
            const std::vector<bool> bb = to_bits(bv, 8);
            in.insert(in.end(), bb.begin(), bb.end());
            const std::vector<bool> out = sim.cycle(in);
            EXPECT_EQ(from_bits(out, 0, 8), (av + bv) & 0xff);
            EXPECT_EQ(out[8], ((av + bv) >> 8) != 0);
        }
    }
}

TEST(Rtl, SubtractorAndComparisons) {
    module_builder m("sub8");
    const bus a = m.input_bus("a", 8);
    const bus b = m.input_bus("b", 8);
    const auto r = m.sub(a, b);
    m.output_bus("diff", r.diff);
    m.output("borrow", r.borrow);
    m.output("lt", m.ult(a, b));
    m.output("le", m.ule(a, b));
    m.output("eq", m.eq(a, b));
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    for (std::uint32_t av : {0u, 9u, 100u, 255u}) {
        for (std::uint32_t bv : {0u, 9u, 101u, 255u}) {
            std::vector<bool> in = to_bits(av, 8);
            const std::vector<bool> bb = to_bits(bv, 8);
            in.insert(in.end(), bb.begin(), bb.end());
            const std::vector<bool> out = sim.cycle(in);
            EXPECT_EQ(from_bits(out, 0, 8), (av - bv) & 0xff);
            EXPECT_EQ(out[8], av < bv) << av << " " << bv;   // borrow
            EXPECT_EQ(out[9], av < bv);
            EXPECT_EQ(out[10], av <= bv);
            EXPECT_EQ(out[11], av == bv);
        }
    }
}

TEST(Rtl, IncrementAndLiterals) {
    module_builder m("inc4");
    const bus a = m.input_bus("a", 4);
    m.output_bus("y", m.inc(a));
    m.output("is7", m.eq_const(a, 7));
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);
    for (std::uint32_t v = 0; v < 16; ++v) {
        const std::vector<bool> out = sim.cycle(to_bits(v, 4));
        EXPECT_EQ(from_bits(out, 0, 4), (v + 1) & 0xf);
        EXPECT_EQ(out[4], v == 7);
    }
}

TEST(Rtl, BitwiseAndMux) {
    module_builder m("bw4");
    const bus a = m.input_bus("a", 4);
    const bus b = m.input_bus("b", 4);
    const expr_id s = m.input("s");
    m.output_bus("and", m.bw_and(a, b));
    m.output_bus("or", m.bw_or(a, b));
    m.output_bus("xor", m.bw_xor(a, b));
    m.output_bus("not", m.bw_not(a));
    m.output_bus("mux", m.mux2(s, a, b));
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    for (std::uint32_t av : {0u, 5u, 12u, 15u}) {
        for (std::uint32_t bv : {0u, 3u, 10u, 15u}) {
            for (bool sv : {false, true}) {
                std::vector<bool> in = to_bits(av, 4);
                const std::vector<bool> bb = to_bits(bv, 4);
                in.insert(in.end(), bb.begin(), bb.end());
                in.push_back(sv);
                const std::vector<bool> out = sim.cycle(in);
                EXPECT_EQ(from_bits(out, 0, 4), av & bv);
                EXPECT_EQ(from_bits(out, 4, 4), av | bv);
                EXPECT_EQ(from_bits(out, 8, 4), av ^ bv);
                EXPECT_EQ(from_bits(out, 12, 4), (~av) & 0xf);
                EXPECT_EQ(from_bits(out, 16, 4), sv ? av : bv);
            }
        }
    }
}

TEST(Rtl, MuxTreeAndDecode) {
    module_builder m("mt");
    const bus sel = m.input_bus("sel", 2);
    const bus a = m.input_bus("a", 3);
    const bus b = m.input_bus("b", 3);
    const bus c = m.input_bus("c", 3);
    const bus d = m.input_bus("d", 3);
    m.output_bus("y", m.mux_tree(sel, {a, b, c, d}));
    const auto onehot = m.decode(sel);
    for (std::size_t i = 0; i < onehot.size(); ++i) {
        m.output("hot" + std::to_string(i), onehot[i]);
    }
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    const std::uint32_t vals[4] = {5, 2, 7, 1};
    for (std::uint32_t s = 0; s < 4; ++s) {
        std::vector<bool> in = to_bits(s, 2);
        for (std::uint32_t v : vals) {
            const auto piece = to_bits(v, 3);
            in.insert(in.end(), piece.begin(), piece.end());
        }
        const std::vector<bool> out = sim.cycle(in);
        EXPECT_EQ(from_bits(out, 0, 3), vals[s]);
        for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[3 + i], i == s);
    }
}

TEST(Rtl, ShiftsAndRotate) {
    module_builder m("sh");
    const bus a = m.input_bus("a", 8);
    const expr_id f = m.input("fill");
    m.output_bus("shl2", m.shl(a, 2, f));
    m.output_bus("shr3", m.shr(a, 3, f));
    m.output_bus("rotl3", m.rotl(a, 3));
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    for (std::uint32_t v : {0x81u, 0x5au, 0xffu, 0x01u}) {
        for (bool fv : {false, true}) {
            std::vector<bool> in = to_bits(v, 8);
            in.push_back(fv);
            const std::vector<bool> out = sim.cycle(in);
            const std::uint32_t fill2 = fv ? 0x3u : 0u;
            const std::uint32_t fill3 = fv ? 0x7u : 0u;
            EXPECT_EQ(from_bits(out, 0, 8), ((v << 2) | fill2) & 0xff);
            EXPECT_EQ(from_bits(out, 8, 8), (v >> 3) | (fill3 << 5));
            EXPECT_EQ(from_bits(out, 16, 8), ((v << 3) | (v >> 5)) & 0xff);
        }
    }
}

TEST(Rtl, RegisterAccumulator) {
    module_builder m("acc");
    const bus d = m.input_bus("d", 8);
    const bus acc = m.new_register("acc", 8, 0);
    m.connect_register(acc, m.add(acc, d).sum);
    m.output_bus("acc", acc);
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    std::uint32_t expect = 0;
    for (std::uint32_t d_val : {13u, 200u, 77u, 255u, 1u}) {
        const std::vector<bool> out = sim.cycle(to_bits(d_val, 8));
        EXPECT_EQ(from_bits(out, 0, 8), expect);  // pre-edge value
        expect = (expect + d_val) & 0xff;
    }
}

TEST(Rtl, RegisterInitialValue) {
    module_builder m("init");
    const bus q = m.new_register("q", 8, 0xa5);
    m.connect_register(q, q);
    m.output_bus("q", q);
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);
    EXPECT_EQ(from_bits(sim.cycle({}), 0, 8), 0xa5u);
}

TEST(Rtl, BuildRejectsUnconnectedRegister) {
    module_builder m("bad");
    m.new_register("q", 2, 0);
    m.output("y", m.lit(true));
    EXPECT_THROW(m.build(), std::logic_error);
}

TEST(Rtl, ConnectRegisterRejectsForeignBus) {
    module_builder m("bad2");
    const bus q = m.new_register("q", 2, 0);
    m.connect_register(q, q);
    const bus notreg = m.input_bus("x", 2);
    EXPECT_THROW(m.connect_register(notreg, notreg), std::invalid_argument);
}

TEST(Rtl, WidthMismatchThrows) {
    module_builder m("w");
    const bus a = m.input_bus("a", 4);
    const bus b = m.input_bus("b", 5);
    EXPECT_THROW(m.add(a, b), std::invalid_argument);
    EXPECT_THROW(m.bw_and(a, b), std::invalid_argument);
    EXPECT_THROW(m.mux2(m.lit(true), a, b), std::invalid_argument);
}

}  // namespace
}  // namespace plee::syn
