// Tests for trace collection and VCD export.

#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"
#include "synth/rtl.hpp"

namespace plee::sim {
namespace {

nl::netlist xor_chain() {
    syn::module_builder m("xc");
    const syn::expr_id a = m.input("a");
    const syn::expr_id b = m.input("b");
    const syn::expr_id c = m.input("c");
    m.output("y", m.arena().xor_(m.arena().xor_(a, b), c));
    return m.build();
}

TEST(Vcd, TraceIsEmptyUnlessRequested) {
    const auto mapped = pl::map_to_phased_logic(xor_chain());
    pl_simulator sim(mapped.pl);
    sim.run(random_vectors(4, 3, 1));
    EXPECT_TRUE(sim.trace().empty());
}

TEST(Vcd, TraceRecordsDataTokens) {
    const auto mapped = pl::map_to_phased_logic(xor_chain());
    sim_options opts;
    opts.collect_trace = true;
    pl_simulator sim(mapped.pl, opts);
    sim.run(random_vectors(4, 3, 1));
    EXPECT_FALSE(sim.trace().empty());
    for (const trace_event& ev : sim.trace()) {
        EXPECT_EQ(mapped.pl.edge(ev.edge).kind, pl::edge_kind::data);
        EXPECT_GE(ev.time, 0.0);
    }
}

TEST(Vcd, DocumentIsWellFormed) {
    const auto mapped = pl::map_to_phased_logic(xor_chain());
    sim_options opts;
    opts.collect_trace = true;
    pl_simulator sim(mapped.pl, opts);
    sim.run(random_vectors(6, 3, 9));

    const std::string vcd = to_vcd(mapped.pl, sim.trace());
    EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
    EXPECT_NE(vcd.find("\n#"), std::string::npos);  // at least one timestamp
    // Input port names appear as signals.
    EXPECT_NE(vcd.find(" a $end"), std::string::npos);
}

TEST(Vcd, TimestampsAreMonotone) {
    const auto mapped = pl::map_to_phased_logic(xor_chain());
    sim_options opts;
    opts.collect_trace = true;
    pl_simulator sim(mapped.pl, opts);
    sim.run(random_vectors(8, 3, 4));

    const std::string vcd = to_vcd(mapped.pl, sim.trace());
    long long prev = -1;
    std::istringstream is(vcd);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] != '#') continue;
        const long long t = std::stoll(line.substr(1));
        EXPECT_GE(t, prev);
        prev = t;
    }
    EXPECT_GE(prev, 0);
}

TEST(Vcd, PortsOnlyModeShrinksSignalCount) {
    // A 4-bit adder has internal carry wires beyond the ports.
    syn::module_builder m("add");
    const syn::bus a = m.input_bus("a", 4);
    const syn::bus b = m.input_bus("b", 4);
    m.output_bus("s", m.add(a, b).sum);
    const auto mapped = pl::map_to_phased_logic(m.build());
    sim_options opts;
    opts.collect_trace = true;
    pl_simulator sim(mapped.pl, opts);
    sim.run(random_vectors(4, 8, 2));

    vcd_options full;
    vcd_options ports;
    ports.ports_only = true;
    const std::string all = to_vcd(mapped.pl, sim.trace(), full);
    const std::string io = to_vcd(mapped.pl, sim.trace(), ports);
    auto count_vars = [](const std::string& s) {
        std::size_t n = 0, pos = 0;
        while ((pos = s.find("$var", pos)) != std::string::npos) {
            ++n;
            pos += 4;
        }
        return n;
    };
    EXPECT_LT(count_vars(io), count_vars(all));
    EXPECT_GE(count_vars(io), 9u);  // 8 inputs + at least one output wire
}

}  // namespace
}  // namespace plee::sim
