// Tests for the table renderer, the JSON serializer behind the BENCH_*.json
// artifacts, and the end-to-end Table 3 experiment row.

#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "synth/rtl.hpp"

namespace plee::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
    text_table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "123456"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| name "), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("123456"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|---"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, CsvOutput) {
    text_table t({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsRaggedRows) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Formatting, FixedAndPercent) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_pct(36.4), "+36%");
    EXPECT_EQ(fmt_pct(-2.3), "-2%");
}

TEST(Experiment, AdderRowHasPaperShape) {
    // An 8-bit registered adder: EE must win, area must grow, and the row's
    // derived columns must be mutually consistent.
    syn::module_builder m("rowtest");
    const syn::bus a = m.input_bus("a", 8);
    const syn::bus b = m.input_bus("b", 8);
    const syn::bus acc = m.new_register("acc", 8, 0);
    m.connect_register(acc, m.add(acc, m.add(a, b).sum).sum);
    m.output_bus("acc", acc);
    m.output("cout", m.add(a, b).carry);
    const nl::netlist n = m.build();

    experiment_options opts;
    opts.measure.num_vectors = 60;
    const experiment_row row = run_ee_experiment("registered adder", n, opts);

    EXPECT_GT(row.pl_gates, 0u);
    EXPECT_GT(row.ee_gates, 0u);
    EXPECT_GT(row.delay_no_ee, 0.0);
    EXPECT_GT(row.delay_ee, 0.0);
    EXPECT_NEAR(row.delay_diff, row.delay_no_ee - row.delay_ee, 1e-9);
    EXPECT_NEAR(row.area_increase_pct,
                100.0 * static_cast<double>(row.ee_gates) /
                    static_cast<double>(row.pl_gates),
                1e-9);
    EXPECT_NEAR(row.delay_decrease_pct, 100.0 * row.delay_diff / row.delay_no_ee,
                1e-9);
    // The headline claim on an arithmetic circuit: EE reduces delay.
    EXPECT_GT(row.delay_decrease_pct, 0.0);
    EXPECT_EQ(row.ee_detail.triggers_added, row.ee_gates);
}

TEST(Experiment, ThresholdSuppressesEe) {
    syn::module_builder m("supp");
    const syn::bus a = m.input_bus("a", 4);
    const syn::bus b = m.input_bus("b", 4);
    m.output_bus("s", m.add(a, b).sum);
    const nl::netlist n = m.build();

    experiment_options opts;
    opts.measure.num_vectors = 10;
    opts.ee.search.cost_threshold = 1e12;
    const experiment_row row = run_ee_experiment("suppressed", n, opts);
    EXPECT_EQ(row.ee_gates, 0u);
    EXPECT_EQ(row.area_increase_pct, 0.0);
}

TEST(Json, SerializesNestedValuesDeterministically) {
    json root = json::object();
    root.set("name", json::str("trigger"));
    root.set("speedup", json::number(5.25));
    root.set("count", json::number(14));
    root.set("ok", json::boolean(true));
    json arr = json::array();
    arr.push(json::number(1));
    arr.push(json::str("two\n\"quoted\""));
    arr.push(json::number(2));
    root.set("items", std::move(arr));
    root.set("empty_obj", json::object());
    root.set("empty_arr", json::array());

    const std::string s = root.dump();
    EXPECT_EQ(s,
              "{\n"
              "  \"name\": \"trigger\",\n"
              "  \"speedup\": 5.25,\n"
              "  \"count\": 14,\n"
              "  \"ok\": true,\n"
              "  \"items\": [\n"
              "    1,\n"
              "    \"two\\n\\\"quoted\\\"\",\n"
              "    2\n"
              "  ],\n"
              "  \"empty_obj\": {},\n"
              "  \"empty_arr\": []\n"
              "}\n");
}

TEST(Json, RejectsKindMisuse) {
    json arr = json::array();
    EXPECT_THROW(arr.set("k", json::number(1)), std::logic_error);
    json obj = json::object();
    EXPECT_THROW(obj.push(json::number(1)), std::logic_error);
}

TEST(Json, ExperimentRowRoundTripsAllColumns) {
    experiment_row row;
    row.description = "demo";
    row.pl_gates = 10;
    row.ee_gates = 4;
    row.delay_no_ee = 12.5;
    row.delay_ee = 10.0;
    row.delay_diff = 2.5;
    row.area_increase_pct = 40.0;
    row.delay_decrease_pct = 20.0;
    const std::string s = to_json(row).dump();
    EXPECT_NE(s.find("\"description\": \"demo\""), std::string::npos);
    EXPECT_NE(s.find("\"pl_gates\": 10"), std::string::npos);
    EXPECT_NE(s.find("\"ee_gates\": 4"), std::string::npos);
    EXPECT_NE(s.find("\"delay_no_ee_ns\": 12.5"), std::string::npos);
    EXPECT_NE(s.find("\"area_increase_pct\": 40"), std::string::npos);
}

}  // namespace
}  // namespace plee::report
