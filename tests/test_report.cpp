// Tests for the table renderer and the end-to-end Table 3 experiment row.

#include "report/experiment.hpp"
#include "report/table.hpp"

#include <gtest/gtest.h>

#include "synth/rtl.hpp"

namespace plee::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
    text_table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "123456"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| name "), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("123456"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|---"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, CsvOutput) {
    text_table t({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsRaggedRows) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Formatting, FixedAndPercent) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_pct(36.4), "+36%");
    EXPECT_EQ(fmt_pct(-2.3), "-2%");
}

TEST(Experiment, AdderRowHasPaperShape) {
    // An 8-bit registered adder: EE must win, area must grow, and the row's
    // derived columns must be mutually consistent.
    syn::module_builder m("rowtest");
    const syn::bus a = m.input_bus("a", 8);
    const syn::bus b = m.input_bus("b", 8);
    const syn::bus acc = m.new_register("acc", 8, 0);
    m.connect_register(acc, m.add(acc, m.add(a, b).sum).sum);
    m.output_bus("acc", acc);
    m.output("cout", m.add(a, b).carry);
    const nl::netlist n = m.build();

    experiment_options opts;
    opts.measure.num_vectors = 60;
    const experiment_row row = run_ee_experiment("registered adder", n, opts);

    EXPECT_GT(row.pl_gates, 0u);
    EXPECT_GT(row.ee_gates, 0u);
    EXPECT_GT(row.delay_no_ee, 0.0);
    EXPECT_GT(row.delay_ee, 0.0);
    EXPECT_NEAR(row.delay_diff, row.delay_no_ee - row.delay_ee, 1e-9);
    EXPECT_NEAR(row.area_increase_pct,
                100.0 * static_cast<double>(row.ee_gates) /
                    static_cast<double>(row.pl_gates),
                1e-9);
    EXPECT_NEAR(row.delay_decrease_pct, 100.0 * row.delay_diff / row.delay_no_ee,
                1e-9);
    // The headline claim on an arithmetic circuit: EE reduces delay.
    EXPECT_GT(row.delay_decrease_pct, 0.0);
    EXPECT_EQ(row.ee_detail.triggers_added, row.ee_gates);
}

TEST(Experiment, ThresholdSuppressesEe) {
    syn::module_builder m("supp");
    const syn::bus a = m.input_bus("a", 4);
    const syn::bus b = m.input_bus("b", 4);
    m.output_bus("s", m.add(a, b).sum);
    const nl::netlist n = m.build();

    experiment_options opts;
    opts.measure.num_vectors = 10;
    opts.ee.search.cost_threshold = 1e12;
    const experiment_row row = run_ee_experiment("suppressed", n, opts);
    EXPECT_EQ(row.ee_gates, 0u);
    EXPECT_EQ(row.area_increase_pct, 0.0);
}

}  // namespace
}  // namespace plee::report
