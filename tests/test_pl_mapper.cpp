// Tests for the synchronous -> Phased Logic direct mapping: gate/edge
// construction, acknowledge feedback insertion, the feedback-sharing
// optimization, and the live/safe guarantees of Section 2.

#include "plogic/pl_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "synth/fsm.hpp"
#include "synth/rtl.hpp"

namespace plee::pl {
namespace {

nl::netlist tiny_comb() {
    syn::module_builder m("tiny");
    const syn::expr_id a = m.input("a");
    const syn::expr_id b = m.input("b");
    m.output("y", m.arena().and_(a, b));
    return m.build();
}

nl::netlist tiny_counter() {
    syn::module_builder m("cnt");
    const syn::expr_id en = m.input("en");
    const syn::bus q = m.new_register("q", 3, 0);
    m.connect_register(q, m.mux2(en, m.inc(q), q));
    m.output_bus("q", q);
    return m.build();
}

TEST(PlMapper, CombinationalMapping) {
    const nl::netlist n = tiny_comb();
    const map_result r = map_to_phased_logic(n);
    EXPECT_EQ(r.pl.sources().size(), 2u);
    EXPECT_EQ(r.pl.sinks().size(), 1u);
    EXPECT_EQ(r.pl.num_pl_gates(), n.num_pl_mappable());
    EXPECT_TRUE(r.pl.verify().ok());
}

TEST(PlMapper, EveryCellHasAGate) {
    const nl::netlist n = tiny_counter();
    const map_result r = map_to_phased_logic(n);
    for (nl::cell_id c = 0; c < n.num_cells(); ++c) {
        EXPECT_NE(r.gate_of_cell[c], k_invalid_gate);
    }
}

TEST(PlMapper, RegisterOutputsCarryInitialTokens) {
    const nl::netlist n = tiny_counter();
    const map_result r = map_to_phased_logic(n);
    for (const pl_edge& e : r.pl.edges()) {
        if (e.kind != edge_kind::data) continue;
        const bool from_through = r.pl.gate(e.from).kind == gate_kind::through;
        EXPECT_EQ(e.init_token, from_through);
    }
}

TEST(PlMapper, AckMarkingComplementsDataMarking) {
    const nl::netlist n = tiny_counter();
    const map_result r = map_to_phased_logic(n);
    for (const pl_edge& e : r.pl.edges()) {
        if (e.kind != edge_kind::ack) continue;
        const bool producer_is_through = r.pl.gate(e.to).kind == gate_kind::through;
        EXPECT_EQ(e.init_token, !producer_is_through);
    }
}

TEST(PlMapper, SequentialMappingIsLiveAndSafe) {
    const map_result r = map_to_phased_logic(tiny_counter());
    const mg_report report = r.pl.verify();
    EXPECT_TRUE(report.well_formed);
    EXPECT_TRUE(report.live);
    EXPECT_TRUE(report.safe);
}

TEST(PlMapper, ConservativeModeAcksEveryFanoutPair) {
    map_options conservative;
    conservative.share_feedbacks = false;
    const nl::netlist n = tiny_counter();
    const map_result r = map_to_phased_logic(n, conservative);
    EXPECT_TRUE(r.pl.verify().ok());
    EXPECT_EQ(r.stats.acks_saved_by_natural_cycles, 0u);
    EXPECT_EQ(r.stats.acks_saved_by_sharing, 0u);

    // One ack per distinct (producer, consumer) fanout pair.
    std::size_t distinct_pairs = 0;
    {
        std::set<std::pair<gate_id, gate_id>> pairs;
        for (const pl_edge& e : r.pl.edges()) {
            if (e.kind == edge_kind::data) pairs.insert({e.from, e.to});
        }
        distinct_pairs = pairs.size();
    }
    EXPECT_EQ(r.pl.num_ack_edges(), distinct_pairs);
}

TEST(PlMapper, SharingSavesAcks) {
    // A register feeding logic that feeds back to the register D input forms
    // a natural cycle, so the optimizer must save at least one ack there.
    const nl::netlist n = tiny_counter();
    map_options shared;
    shared.share_feedbacks = true;
    const map_result opt = map_to_phased_logic(n, shared);
    map_options full;
    full.share_feedbacks = false;
    const map_result cons = map_to_phased_logic(n, full);

    EXPECT_GT(opt.stats.acks_saved_by_natural_cycles +
                  opt.stats.acks_saved_by_sharing,
              0u);
    EXPECT_LT(opt.pl.num_ack_edges(), cons.pl.num_ack_edges());
    EXPECT_TRUE(opt.pl.verify().ok());
}

TEST(PlMapper, MapsWideLutsUpToTheTruthTableLimit) {
    // The paper's gate is a LUT4, but the mapping rules are arity-blind: a
    // LUT of any width the truth-table layer can express becomes one compute
    // gate whose marked graph still verifies.
    for (int k : {5, 7, 8}) {
        nl::netlist n;
        std::vector<nl::cell_id> ins;
        for (int i = 0; i < k; ++i) ins.push_back(n.add_input("i" + std::to_string(i)));
        const bf::truth_table or_k = bf::truth_table::from_function(
            k, [](std::uint32_t m) { return m != 0; });
        n.add_output("y", n.add_lut(or_k, ins));
        const map_result mapped = map_to_phased_logic(n);
        EXPECT_TRUE(mapped.pl.verify().ok()) << "k=" << k;
    }
    // Beyond 8 inputs there is no truth table to put in the LUT at all.
    EXPECT_THROW(bf::truth_table(9), std::invalid_argument);
}

TEST(PlMapper, ConstantsBecomeConstSources) {
    nl::netlist n;
    const nl::cell_id one = n.add_constant(true);
    const nl::cell_id q = n.add_dff(nl::k_invalid_cell, false, "q");
    n.set_dff_input(q, one);
    n.add_output("y", q);

    const map_result r = map_to_phased_logic(n);
    const pl_gate& g = r.pl.gate(r.gate_of_cell[one]);
    EXPECT_EQ(g.kind, gate_kind::const_source);
    EXPECT_TRUE(g.const_value);
    EXPECT_TRUE(r.pl.verify().ok());
}

TEST(PlMapper, ArrivalDepthMatchesCombDepth) {
    // A chain a & b -> xor c -> output: depths 1 and 2.
    syn::module_builder m("depth");
    auto& ar = m.arena();
    const syn::expr_id a = m.input("a");
    const syn::expr_id b = m.input("b");
    const syn::expr_id c = m.input("c");
    const syn::expr_id d = m.input("d");
    const syn::expr_id e = m.input("e");
    // Force two LUT levels: (a&b&c&d) ^ e cannot pack into one LUT4.
    const syn::expr_id wide = ar.and_(ar.and_(a, b), ar.and_(c, d));
    m.output("y", ar.xor_(wide, e));
    const nl::netlist n = m.build();
    ASSERT_EQ(n.num_luts(), 2u);

    const map_result r = map_to_phased_logic(n);
    const std::vector<int> depth = r.pl.arrival_depth();
    int max_depth = 0;
    for (gate_id g = 0; g < r.pl.num_gates(); ++g) {
        if (r.pl.gate(g).kind == gate_kind::compute) {
            max_depth = std::max(max_depth, depth[g]);
        }
        if (r.pl.gate(g).kind == gate_kind::source) {
            EXPECT_EQ(depth[g], 0);
        }
    }
    EXPECT_EQ(max_depth, 2);
}

TEST(PlMapper, FsmBenchmarkVerifies) {
    syn::module_builder m("fsm");
    const syn::expr_id go = m.input("go");
    syn::fsm_builder fsm(m, "f", 5, 0);
    fsm.transition(0, go, 1);
    fsm.transition(1, go, 2);
    fsm.transition(2, go, 3);
    fsm.transition(3, go, 4);
    fsm.transition(4, go, 0);
    m.output("last", fsm.in_state(4));
    fsm.finalize();
    const nl::netlist n = m.build();
    const map_result r = map_to_phased_logic(n);
    EXPECT_TRUE(r.pl.verify().ok());
    EXPECT_GT(r.stats.acks_added, 0u);
}

TEST(PlMapper, DotExportShowsAcksDashed) {
    const map_result r = map_to_phased_logic(tiny_comb());
    const std::string dot = r.pl.to_dot();
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("style=solid"), std::string::npos);
}

}  // namespace
}  // namespace plee::pl
