// Tests for the LEDR-level structural simulator: the physical dual-rail view
// of a PL netlist must agree wave-for-wave with the synchronous golden model
// and with the token-level event simulator, for ANY gate scan order — the
// delay-insensitivity property the design style is named for.

#include "plogic/ledr_sim.hpp"

#include <gtest/gtest.h>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"
#include "synth/rtl.hpp"

namespace plee::pl {
namespace {

nl::netlist small_alu() {
    syn::module_builder m("alu");
    const syn::bus a = m.input_bus("a", 4);
    const syn::bus b = m.input_bus("b", 4);
    const syn::expr_id sel = m.input("sel");
    m.output_bus("y", m.mux2(sel, m.add(a, b).sum, m.bw_xor(a, b)));
    return m.build();
}

nl::netlist small_counter() {
    syn::module_builder m("cnt");
    const syn::expr_id en = m.input("en");
    const syn::bus q = m.new_register("q", 3, 5);
    m.connect_register(q, m.mux2(en, m.inc(q), q));
    m.output_bus("q", q);
    return m.build();
}

TEST(LedrSim, CombinationalMatchesGolden) {
    const nl::netlist n = small_alu();
    const map_result mapped = map_to_phased_logic(n);
    const auto vectors = sim::random_vectors(40, n.inputs().size(), 11);

    ledr_simulator sim(mapped.pl);
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_EQ(waves[w], gold.cycle(vectors[w])) << "wave " << w;
    }
}

TEST(LedrSim, SequentialMatchesGolden) {
    const nl::netlist n = small_counter();
    const map_result mapped = map_to_phased_logic(n);
    const auto vectors = sim::random_vectors(50, 1, 23);

    ledr_simulator sim(mapped.pl);
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_EQ(waves[w], gold.cycle(vectors[w])) << "wave " << w;
    }
}

TEST(LedrSim, AgreesWithTokenSimulatorUnderEe) {
    const nl::netlist n = small_alu();
    map_result mapped = map_to_phased_logic(n);
    ee::apply_early_evaluation(mapped.pl);

    const auto vectors = sim::random_vectors(30, n.inputs().size(), 5);
    ledr_simulator structural(mapped.pl);
    const auto ledr_waves = structural.run(vectors);

    sim::pl_simulator token(mapped.pl);
    const auto token_waves = token.run(vectors);

    for (std::size_t w = 0; w < vectors.size(); ++w) {
        EXPECT_EQ(ledr_waves[w], token_waves[w].outputs) << "wave " << w;
    }
}

// The headline property: the outputs are independent of the gate firing
// order.  Any scan permutation must produce identical output words.
class LedrScanOrder : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedrScanOrder, DelayInsensitivity) {
    const nl::netlist n = small_counter();
    const map_result mapped = map_to_phased_logic(n);
    const auto vectors = sim::random_vectors(25, 1, 99);

    ledr_simulator reference(mapped.pl, 0);
    const auto expected = reference.run(vectors);

    ledr_simulator shuffled(mapped.pl, GetParam());
    EXPECT_EQ(shuffled.run(vectors), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedrScanOrder,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

TEST(LedrSim, EveryGateFiresOncePerWave) {
    const nl::netlist n = small_counter();
    const map_result mapped = map_to_phased_logic(n);
    const auto vectors = sim::random_vectors(16, 1, 7);
    ledr_simulator sim(mapped.pl);
    sim.run(vectors);
    // compute + through gates fire (at least) once per wave; sinks exactly
    // once; allowance for the +/-1 drain at the measurement horizon.
    EXPECT_GE(sim.firings(), vectors.size() * mapped.pl.num_pl_gates());
}

TEST(LedrSim, BenchmarkEquivalenceThroughEe) {
    // A mid-size benchmark through the full pipeline at the LEDR level.
    const nl::netlist n = bench::build_benchmark("b10");
    map_result mapped = map_to_phased_logic(n);
    ee::apply_early_evaluation(mapped.pl);

    const auto vectors = sim::random_vectors(20, n.inputs().size(), 31);
    ledr_simulator sim(mapped.pl);
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_EQ(waves[w], gold.cycle(vectors[w])) << "wave " << w;
    }
}

TEST(LedrSim, VectorWidthChecked) {
    const map_result mapped = map_to_phased_logic(small_counter());
    ledr_simulator sim(mapped.pl);
    EXPECT_THROW(sim.run({{true, false}}), std::invalid_argument);
}

}  // namespace
}  // namespace plee::pl
