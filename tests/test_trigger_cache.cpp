// Tests for the P-canonical trigger cache: canonicalization properties, the
// permutation-class collapse, cross-thread merging, and the collision
// distribution of the 64-bit key mixer (the weak shifted-XOR hash it
// replaced clustered badly under unordered_map's power-of-two bucketing).

#include "ee/trigger_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "bool/support.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {
namespace {

TEST(TriggerCache, CanonicalFormIsPermutationInvariant) {
    // Every input permutation of a function must canonicalize to the same
    // bits, and the stored permutation must actually map there.
    std::uint64_t state = 11;
    for (int trial = 0; trial < 50; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::truth_table f(4, state & 0xffff);
        const trigger_cache::canonical_form canon = trigger_cache::canonicalize(f);

        std::vector<int> perm = {0, 1, 2, 3};
        do {
            const bf::truth_table g = f.permute(perm);
            const trigger_cache::canonical_form canon_g =
                trigger_cache::canonicalize(g);
            ASSERT_EQ(canon_g.bits, canon.bits);
            // The witness permutation reproduces the canonical bits.
            std::vector<int> witness(4);
            for (int v = 0; v < 4; ++v) witness[v] = canon_g.perm[v];
            ASSERT_EQ(g.permute(witness).words(), canon.bits);
        } while (std::next_permutation(perm.begin(), perm.end()));
    }
}

TEST(TriggerCache, PermutedMastersShareCacheEntries) {
    // Sweeping a master and then any input permutation of it must add no new
    // canonical entries: the second sweep is all hits.
    trigger_cache cache;
    const bf::truth_table f(4, 0x1ee8);  // random irregular LUT4
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) cache.exact(f, s);
    const std::size_t entries = cache.size();
    const std::uint64_t misses = cache.misses();

    std::vector<int> perm = {2, 0, 3, 1};
    const bf::truth_table g = f.permute(perm);
    std::vector<bf::truth_table> via_cache;
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        via_cache.push_back(cache.exact(g, s));
    }
    EXPECT_EQ(cache.size(), entries);
    EXPECT_EQ(cache.misses(), misses);

    // And the un-permuted answers are still exactly right.
    std::size_t i = 0;
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        EXPECT_EQ(via_cache[i++], exact_trigger_function(g, s));
    }
}

TEST(TriggerCache, MergeFromCombinesEntriesAndCounters) {
    trigger_cache a;
    trigger_cache b;
    const bf::truth_table f(4, 0x8001);
    const bf::truth_table g(4, 0x7ee1);
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        a.exact(f, s);
        b.exact(g, s);
    }
    const std::uint64_t total_misses = a.misses() + b.misses();
    const std::size_t size_a = a.size();

    a.merge_from(b);
    EXPECT_GE(a.size(), size_a);
    EXPECT_EQ(a.misses(), total_misses);

    // Everything b knew is now served from a without new misses.
    const std::uint64_t misses_before = a.misses();
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) a.exact(g, s);
    EXPECT_EQ(a.misses(), misses_before);
}

TEST(TriggerCache, KeyMixerHasNoCollisionClustering) {
    // All 2^16 LUT4 functions x all 14 supports: the mixed keys must be
    // collision-free (they are distinct keys) and spread evenly across the
    // low-order bits unordered_map actually uses for bucketing.  The old
    // `(bits * phi) ^ (support << 7) ^ num_vars` mix collided whole support
    // families onto shared low bits.
    const std::vector<std::uint32_t>& supports = bf::cached_support_subsets(0xf, 3);
    std::vector<std::uint64_t> keys;
    keys.reserve(65536u * supports.size());
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        for (std::uint32_t s : supports) {
            keys.push_back(trigger_cache::mix_key(f, s, 4));
        }
    }

    // Distinctness of the full 64-bit mix.
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());

    // Low-bit balance: with 917504 keys over 4096 buckets the expected load
    // is 224; a healthy mixer stays within ~25% of it everywhere.
    constexpr std::size_t k_buckets = 4096;
    std::vector<std::size_t> load(k_buckets, 0);
    for (std::uint64_t k : keys) ++load[k & (k_buckets - 1)];
    const double expected =
        static_cast<double>(keys.size()) / static_cast<double>(k_buckets);
    const std::size_t max_load = *std::max_element(load.begin(), load.end());
    const std::size_t min_load = *std::min_element(load.begin(), load.end());
    EXPECT_LT(static_cast<double>(max_load), expected * 1.25);
    EXPECT_GT(static_cast<double>(min_load), expected * 0.75);
}

TEST(TriggerCache, MixKeySeparatesFieldVariants) {
    // Same bits, different support / arity must produce different keys.
    const std::uint64_t base = trigger_cache::mix_key(0xcafe, 0b011, 4);
    EXPECT_NE(base, trigger_cache::mix_key(0xcafe, 0b101, 4));
    EXPECT_NE(base, trigger_cache::mix_key(0xcafe, 0b011, 5));
    EXPECT_NE(base, trigger_cache::mix_key(0xcaff, 0b011, 4));
}

TEST(TriggerCache, MultiwordKeysMixEveryWord) {
    // Regression for the multiword refactor: the pre-refactor mixer hashed a
    // bare uint64, so two wide functions agreeing on word 0 would have
    // collapsed to one key.  The reworked mixer chains all active words —
    // differing in ANY single word must change the key.
    const bf::tt_words base{0x0123456789abcdefull, 0xaaaaaaaaaaaaaaaaull,
                            0x5555555555555555ull, 0xdeadbeefcafef00dull};
    const std::uint64_t k8 = trigger_cache::mix_key(base, 0b111, 8);
    for (int w = 0; w < bf::k_num_words; ++w) {
        bf::tt_words flipped = base;
        flipped[w] ^= 1;
        EXPECT_NE(trigger_cache::mix_key(flipped, 0b111, 8), k8) << "word " << w;
    }
    // 7-var keys mix exactly the two active words: word 2/3 noise must not
    // enter (keys are built from valid tables whose tail words are zero, so
    // the chain length has to match the arity).
    const bf::tt_words seven{base[0], base[1], 0, 0};
    EXPECT_EQ(trigger_cache::mix_key(seven, 0b11, 7),
              trigger_cache::mix_key(bf::tt_words{base[0], base[1], 99, 99},
                                     0b11, 7));
    EXPECT_NE(trigger_cache::mix_key(seven, 0b11, 7),
              trigger_cache::mix_key(bf::tt_words{base[0], base[1] ^ 1, 0, 0},
                                     0b11, 7));

    // Low-bit balance over a stream of word-0-identical functions — the
    // exact shape the old mixer degenerated on (every key identical).
    std::uint64_t state = 42;
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 4096; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::tt_words words{0x6996966996696996ull, state,
                                 state * 0x9e3779b97f4a7c15ull, ~state};
        keys.push_back(trigger_cache::mix_key(words, 0b101, 8));
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
    std::vector<std::size_t> load(64, 0);
    for (std::uint64_t k : keys) ++load[k & 63];
    const double expected = static_cast<double>(keys.size()) / 64.0;
    EXPECT_LT(static_cast<double>(
                  *std::max_element(load.begin(), load.end())),
              expected * 1.6);
}

TEST(TriggerCache, WordZeroAliasedWideMastersGetDistinctTriggers) {
    // The aliasing scenario end-to-end: f1 = x0 (expressed over 7 pins) and
    // f2 = x0 XOR x6 share word 0 exactly.  A cache keyed on bare word-0
    // bits would hand f2 the trigger cached for f1 (constant 1 over {x0});
    // the multiword key must keep them apart in both cache flavors.
    const bf::truth_table f1 = bf::truth_table::variable(7, 0);
    const bf::truth_table f2 =
        f1 ^ bf::truth_table::variable(7, 6);
    ASSERT_EQ(f1.bits(), f2.bits());  // word 0 agrees by construction
    ASSERT_NE(f1.words(), f2.words());

    trigger_cache cache;
    const bf::truth_table t1 = cache.exact(f1, 0b1);
    const bf::truth_table t2 = cache.exact(f2, 0b1);
    EXPECT_TRUE(t1.is_constant_one());   // x0 alone determines f1
    EXPECT_TRUE(t2.is_constant_zero());  // but never f2
    EXPECT_EQ(t1, exact_trigger_function(f1, 0b1));
    EXPECT_EQ(t2, exact_trigger_function(f2, 0b1));

    // And the support {x0, x6} fully determines f2.
    EXPECT_TRUE(cache.exact(f2, 0b1000001).is_constant_one());
}

}  // namespace
}  // namespace plee::ee
