// Tests for the P-canonical trigger cache: canonicalization properties, the
// permutation-class collapse, cross-thread merging, and the collision
// distribution of the 64-bit key mixer (the weak shifted-XOR hash it
// replaced clustered badly under unordered_map's power-of-two bucketing).

#include "ee/trigger_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "bool/support.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {
namespace {

TEST(TriggerCache, CanonicalFormIsPermutationInvariant) {
    // Every input permutation of a function must canonicalize to the same
    // bits, and the stored permutation must actually map there.
    std::uint64_t state = 11;
    for (int trial = 0; trial < 50; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::truth_table f(4, state & 0xffff);
        const trigger_cache::canonical_form canon = trigger_cache::canonicalize(f);

        std::vector<int> perm = {0, 1, 2, 3};
        do {
            const bf::truth_table g = f.permute(perm);
            const trigger_cache::canonical_form canon_g =
                trigger_cache::canonicalize(g);
            ASSERT_EQ(canon_g.bits, canon.bits);
            // The witness permutation reproduces the canonical bits.
            std::vector<int> witness(4);
            for (int v = 0; v < 4; ++v) witness[v] = canon_g.perm[v];
            ASSERT_EQ(g.permute(witness).bits(), canon.bits);
        } while (std::next_permutation(perm.begin(), perm.end()));
    }
}

TEST(TriggerCache, PermutedMastersShareCacheEntries) {
    // Sweeping a master and then any input permutation of it must add no new
    // canonical entries: the second sweep is all hits.
    trigger_cache cache;
    const bf::truth_table f(4, 0x1ee8);  // random irregular LUT4
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) cache.exact(f, s);
    const std::size_t entries = cache.size();
    const std::uint64_t misses = cache.misses();

    std::vector<int> perm = {2, 0, 3, 1};
    const bf::truth_table g = f.permute(perm);
    std::vector<bf::truth_table> via_cache;
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        via_cache.push_back(cache.exact(g, s));
    }
    EXPECT_EQ(cache.size(), entries);
    EXPECT_EQ(cache.misses(), misses);

    // And the un-permuted answers are still exactly right.
    std::size_t i = 0;
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        EXPECT_EQ(via_cache[i++], exact_trigger_function(g, s));
    }
}

TEST(TriggerCache, MergeFromCombinesEntriesAndCounters) {
    trigger_cache a;
    trigger_cache b;
    const bf::truth_table f(4, 0x8001);
    const bf::truth_table g(4, 0x7ee1);
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        a.exact(f, s);
        b.exact(g, s);
    }
    const std::uint64_t total_misses = a.misses() + b.misses();
    const std::size_t size_a = a.size();

    a.merge_from(b);
    EXPECT_GE(a.size(), size_a);
    EXPECT_EQ(a.misses(), total_misses);

    // Everything b knew is now served from a without new misses.
    const std::uint64_t misses_before = a.misses();
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) a.exact(g, s);
    EXPECT_EQ(a.misses(), misses_before);
}

TEST(TriggerCache, KeyMixerHasNoCollisionClustering) {
    // All 2^16 LUT4 functions x all 14 supports: the mixed keys must be
    // collision-free (they are distinct keys) and spread evenly across the
    // low-order bits unordered_map actually uses for bucketing.  The old
    // `(bits * phi) ^ (support << 7) ^ num_vars` mix collided whole support
    // families onto shared low bits.
    const std::vector<std::uint32_t>& supports = bf::cached_support_subsets(0xf, 3);
    std::vector<std::uint64_t> keys;
    keys.reserve(65536u * supports.size());
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        for (std::uint32_t s : supports) {
            keys.push_back(trigger_cache::mix_key(f, s, 4));
        }
    }

    // Distinctness of the full 64-bit mix.
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());

    // Low-bit balance: with 917504 keys over 4096 buckets the expected load
    // is 224; a healthy mixer stays within ~25% of it everywhere.
    constexpr std::size_t k_buckets = 4096;
    std::vector<std::size_t> load(k_buckets, 0);
    for (std::uint64_t k : keys) ++load[k & (k_buckets - 1)];
    const double expected =
        static_cast<double>(keys.size()) / static_cast<double>(k_buckets);
    const std::size_t max_load = *std::max_element(load.begin(), load.end());
    const std::size_t min_load = *std::min_element(load.begin(), load.end());
    EXPECT_LT(static_cast<double>(max_load), expected * 1.25);
    EXPECT_GT(static_cast<double>(min_load), expected * 0.75);
}

TEST(TriggerCache, MixKeySeparatesFieldVariants) {
    // Same bits, different support / arity must produce different keys.
    const std::uint64_t base = trigger_cache::mix_key(0xcafe, 0b011, 4);
    EXPECT_NE(base, trigger_cache::mix_key(0xcafe, 0b101, 4));
    EXPECT_NE(base, trigger_cache::mix_key(0xcafe, 0b011, 5));
    EXPECT_NE(base, trigger_cache::mix_key(0xcaff, 0b011, 4));
}

}  // namespace
}  // namespace plee::ee
