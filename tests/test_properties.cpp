// Cross-cutting property tests over randomly generated circuits: for any
// LUT4+DFF netlist, the PL mapping must be live and safe, event simulation
// (with and without Early Evaluation, pipelined or not) must match the
// synchronous golden model wave-for-wave, and EE must never lose to the
// no-EE circuit by more than the documented Muller-C penalty.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "netlist/transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"

namespace plee {
namespace {

/// Generates a random LUT4+DFF netlist with `num_inputs` PIs, `num_luts`
/// LUTs, `num_dffs` registers and a handful of outputs.
nl::netlist random_netlist(std::uint64_t seed, int num_inputs, int num_luts,
                           int num_dffs) {
    std::mt19937_64 rng(seed);
    nl::netlist n;
    std::vector<nl::cell_id> pool;
    for (int i = 0; i < num_inputs; ++i) {
        pool.push_back(n.add_input("i" + std::to_string(i)));
    }
    std::vector<nl::cell_id> dffs;
    for (int i = 0; i < num_dffs; ++i) {
        dffs.push_back(n.add_dff(nl::k_invalid_cell, rng() & 1, "r" + std::to_string(i)));
        pool.push_back(dffs.back());
    }
    for (int i = 0; i < num_luts; ++i) {
        const int arity = 2 + static_cast<int>(rng() % 3);  // 2..4
        std::vector<nl::cell_id> fanins;
        for (int k = 0; k < arity; ++k) {
            nl::cell_id c;
            do {
                c = pool[rng() % pool.size()];
            } while (std::find(fanins.begin(), fanins.end(), c) != fanins.end());
            fanins.push_back(c);
        }
        // A random function with full support (retry until no vacuous pins).
        bf::truth_table fn(arity);
        do {
            const std::uint64_t mask = (1ull << (1u << arity)) - 1;
            fn = bf::truth_table(arity, rng() & mask);
        } while (fn.support_size() != arity);
        pool.push_back(n.add_lut(fn, std::move(fanins)));
    }
    for (int i = 0; i < num_dffs; ++i) {
        n.set_dff_input(dffs[static_cast<std::size_t>(i)], pool[rng() % pool.size()]);
    }
    // Outputs: the last few pool entries (always at least one).
    const int num_outputs = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < num_outputs; ++i) {
        n.add_output("o" + std::to_string(i), pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
    }
    n.validate();
    return n;
}

class RandomCircuit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuit, MappingIsAlwaysLiveAndSafe) {
    const nl::netlist n = random_netlist(GetParam(), 5, 24, 4);
    const pl::map_result r = pl::map_to_phased_logic(n);
    const pl::mg_report report = r.pl.verify();
    EXPECT_TRUE(report.well_formed) << report.violation;
    EXPECT_TRUE(report.live) << report.violation;
    EXPECT_TRUE(report.safe) << report.violation;
}

TEST_P(RandomCircuit, ConservativeAndSharedMappingsAgreeFunctionally) {
    const nl::netlist n = random_netlist(GetParam(), 4, 18, 3);
    pl::map_options shared;
    shared.share_feedbacks = true;
    pl::map_options conservative;
    conservative.share_feedbacks = false;

    const auto vectors = sim::random_vectors(30, n.inputs().size(), GetParam());
    const pl::map_result m1 = pl::map_to_phased_logic(n, shared);
    const pl::map_result m2 = pl::map_to_phased_logic(n, conservative);
    sim::pl_simulator s1(m1.pl);
    sim::pl_simulator s2(m2.pl);
    const auto w1 = s1.run(vectors);
    const auto w2 = s2.run(vectors);
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        EXPECT_EQ(w1[w].outputs, w2[w].outputs) << "wave " << w;
    }
}

TEST_P(RandomCircuit, EeIsFunctionallyTransparent) {
    const nl::netlist n = random_netlist(GetParam() * 31 + 7, 5, 30, 5);
    pl::map_result base = pl::map_to_phased_logic(n);
    pl::map_result with_ee = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(with_ee.pl);
    EXPECT_TRUE(with_ee.pl.verify().ok());

    const auto vectors = sim::random_vectors(40, n.inputs().size(), GetParam());
    sim::pl_simulator s_base(base.pl);
    sim::pl_simulator s_ee(with_ee.pl);
    const auto w_base = s_base.run(vectors);
    const auto w_ee = s_ee.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        const auto expected = gold.cycle(vectors[w]);
        EXPECT_EQ(w_base[w].outputs, expected) << "wave " << w;
        EXPECT_EQ(w_ee[w].outputs, expected) << "wave " << w;
    }
}

TEST_P(RandomCircuit, EeNeverLosesMoreThanThePenaltyBound) {
    // Within one wave, the EE circuit's critical path can exceed the base
    // circuit's by at most the miss penalty per gate on the path — bounded
    // loosely by penalty * (pl gates).  Because the non-pipelined protocol
    // releases wave k+1 at wave k's stability, per-wave delays couple across
    // waves; the sound invariant is on the cumulative makespan.
    const nl::netlist n = random_netlist(GetParam() * 17 + 3, 4, 20, 3);
    pl::map_result base = pl::map_to_phased_logic(n);
    pl::map_result with_ee = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(with_ee.pl);

    const auto vectors = sim::random_vectors(25, n.inputs().size(), GetParam());
    sim::sim_options opts;
    sim::pl_simulator s_base(base.pl, opts);
    sim::pl_simulator s_ee(with_ee.pl, opts);
    const auto w_base = s_base.run(vectors);
    const auto w_ee = s_ee.run(vectors);

    const double per_wave_bound =
        opts.delays.d_ee_penalty * static_cast<double>(base.pl.num_pl_gates());
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        EXPECT_LE(w_ee[w].output_stable,
                  w_base[w].output_stable + per_wave_bound * static_cast<double>(w + 1))
            << "wave " << w;
    }
}

TEST_P(RandomCircuit, PipelinedModeMatchesFunctionally) {
    const nl::netlist n = random_netlist(GetParam() * 101 + 13, 4, 16, 4);
    const pl::map_result mapped = pl::map_to_phased_logic(n);

    sim::sim_options piped;
    piped.non_pipelined = false;
    sim::pl_simulator sim(mapped.pl, piped);
    const auto vectors = sim::random_vectors(30, n.inputs().size(), GetParam());
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        EXPECT_EQ(waves[w].outputs, gold.cycle(vectors[w])) << "wave " << w;
    }
}

TEST_P(RandomCircuit, CleanupPreservesBehaviour) {
    const nl::netlist n = random_netlist(GetParam() * 7 + 1, 5, 22, 4);
    const nl::cleanup_result cleaned = nl::cleanup(n);

    nl::sync_simulator ref(n);
    nl::sync_simulator cln(cleaned.nl);
    const auto vectors = sim::random_vectors(40, n.inputs().size(), GetParam());
    for (const auto& v : vectors) {
        EXPECT_EQ(ref.cycle(v), cln.cycle(v));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuit,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace plee
