// Golden cross-check of the two pl_simulator event-queue engines: the
// binary-heap reference and the calendar/SoA/CSR throughput engine must
// produce bit-identical wave records, stats and traces on every circuit
// family — the ITC99 suite and all four workload scenario presets — in
// pipelined and non-pipelined mode, with trace collection on and off, under
// stress delay models (tie-heavy, overflow-heavy, all-zero), and through
// the fleet runner at several thread counts.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "plogic/pl_netlist.hpp"
#include "runner/runner.hpp"
#include "sim/measure.hpp"
#include "sim/pl_sim.hpp"
#include "workload/workload.hpp"

namespace plee::sim {
namespace {

struct engine_run {
    std::vector<wave_record> waves;
    sim_run_stats stats;
    std::vector<trace_event> trace;
};

engine_run simulate(const pl::pl_netlist& pl, queue_kind queue,
                    bool non_pipelined, bool collect_trace,
                    const std::vector<std::vector<bool>>& vectors,
                    const delay_model& delays = {}) {
    sim_options opts;
    opts.queue = queue;
    opts.non_pipelined = non_pipelined;
    opts.collect_trace = collect_trace;
    opts.delays = delays;
    pl_simulator simulator(pl, opts);
    engine_run run;
    run.waves = simulator.run(vectors);
    run.stats = simulator.stats();
    run.trace = simulator.trace();
    return run;
}

/// Bit-identical means exact: outputs, all three timestamps of every wave,
/// every stats counter, and the full trace (ordering included).
void expect_identical(const engine_run& heap, const engine_run& cal,
                      const std::string& label) {
    ASSERT_EQ(heap.waves.size(), cal.waves.size()) << label;
    for (std::size_t w = 0; w < heap.waves.size(); ++w) {
        const wave_record& a = heap.waves[w];
        const wave_record& b = cal.waves[w];
        EXPECT_EQ(a.outputs, b.outputs) << label << " wave " << w;
        EXPECT_EQ(a.release_time, b.release_time) << label << " wave " << w;
        EXPECT_EQ(a.input_stable, b.input_stable) << label << " wave " << w;
        EXPECT_EQ(a.output_stable, b.output_stable) << label << " wave " << w;
    }
    EXPECT_EQ(heap.stats.events, cal.stats.events) << label;
    EXPECT_EQ(heap.stats.firings, cal.stats.firings) << label;
    EXPECT_EQ(heap.stats.ee_hits, cal.stats.ee_hits) << label;
    EXPECT_EQ(heap.stats.ee_misses, cal.stats.ee_misses) << label;
    EXPECT_EQ(heap.stats.ee_wins, cal.stats.ee_wins) << label;
    ASSERT_EQ(heap.trace.size(), cal.trace.size()) << label;
    for (std::size_t i = 0; i < heap.trace.size(); ++i) {
        EXPECT_EQ(heap.trace[i].time, cal.trace[i].time) << label << " #" << i;
        EXPECT_EQ(heap.trace[i].edge, cal.trace[i].edge) << label << " #" << i;
        EXPECT_EQ(heap.trace[i].value, cal.trace[i].value) << label << " #" << i;
    }
}

/// Both engines across all four (pipelined x trace) modes.
void check_all_modes(const pl::pl_netlist& pl, const std::string& label,
                     std::size_t num_vectors, const delay_model& delays = {}) {
    const std::vector<std::vector<bool>> vectors =
        random_vectors(num_vectors, pl.sources().size(), 0x5eed);
    for (bool non_pipelined : {true, false}) {
        for (bool trace : {false, true}) {
            const std::string mode =
                label + (non_pipelined ? " non-pipelined" : " pipelined") +
                (trace ? " trace" : "");
            expect_identical(simulate(pl, queue_kind::binary_heap, non_pipelined,
                                      trace, vectors, delays),
                             simulate(pl, queue_kind::calendar, non_pipelined,
                                      trace, vectors, delays),
                             mode);
        }
    }
}

pl::pl_netlist map_with_ee(const nl::netlist& netlist) {
    pl::map_result mapped = pl::map_to_phased_logic(netlist);
    ee::apply_early_evaluation(mapped.pl);
    return std::move(mapped.pl);
}

TEST(SimQueue, Itc99SuiteBitIdentical) {
    for (const bench::benchmark_info& info : bench::itc99_suite()) {
        check_all_modes(map_with_ee(info.build()), info.id, 6);
    }
}

TEST(SimQueue, WorkloadPresetsBitIdentical) {
    for (wl::scenario kind : wl::all_scenarios()) {
        const nl::netlist netlist =
            wl::generate(wl::scenario_params(kind, 120, 99));
        // Plain PL mapping and the EE-transformed circuit both count: the
        // EE masters exercise the efire path and the invariant checker.
        check_all_modes(pl::map_to_phased_logic(netlist).pl,
                        std::string(wl::to_string(kind)) + "/plain", 8);
        check_all_modes(map_with_ee(netlist),
                        std::string(wl::to_string(kind)) + "/ee", 8);
    }
}

TEST(SimQueue, WideArityLut6PlusPipelineBitIdentical) {
    // The multiword end-to-end: a workload-generated wide-arity netlist
    // (LUT5-8 gates, multiword truth tables), EE-transformed, must simulate
    // bit-identically on both engines — and the run must actually exercise
    // the wide path: at least one attached trigger must belong to a master
    // with more than 6 data pins.
    for (wl::scenario kind : {wl::scenario::lut6_dag, wl::scenario::lut8_datapath}) {
        const nl::netlist netlist =
            wl::generate(wl::scenario_params(kind, 160, 2026));
        pl::map_result mapped = pl::map_to_phased_logic(netlist);
        const ee::ee_stats stats = ee::apply_early_evaluation(mapped.pl);
        ASSERT_GT(stats.triggers_added, 0u) << wl::to_string(kind);

        std::size_t wide_masters = 0;
        std::size_t widest_pins = 0;
        for (const ee::applied_trigger& at : stats.applied) {
            const std::size_t pins = mapped.pl.gate(at.master).data_in.size();
            widest_pins = std::max(widest_pins, pins);
            if (pins > 6) ++wide_masters;
            // Every attached trigger re-derives exactly from the master via
            // the scalar per-minterm oracle — the EE pass went through the
            // multiword kernels, the oracle does not.
            ASSERT_EQ(at.candidate.function,
                      ee::scalar::exact_trigger_function(
                          mapped.pl.gate(at.master).function,
                          at.candidate.support))
                << wl::to_string(kind) << " master " << at.master;
        }
        if (kind == wl::scenario::lut8_datapath) {
            EXPECT_GT(wide_masters, 0u)
                << "no >6-pin EE master generated; widest=" << widest_pins;
        }
        check_all_modes(mapped.pl, std::string(wl::to_string(kind)) + "/wide-ee", 6);
    }
}

TEST(SimQueue, StressDelayModelsBitIdentical) {
    const nl::netlist netlist =
        wl::generate(wl::scenario_params(wl::scenario::random_dag, 80, 7));
    const pl::pl_netlist pl = map_with_ee(netlist);

    // Tie-heavy: every component equal, so most deposits share times and the
    // seq tie-break decides the order.
    delay_model ties;
    ties.d_celem = ties.d_lut = ties.d_latch = ties.d_ee_penalty =
        ties.d_source = 1.0;
    check_all_modes(pl, "ties", 6, ties);

    // Overflow-heavy: a 5e5x spread between the smallest and largest delay
    // puts every gate deposit far beyond the calendar's ring window, forcing
    // the overflow-heap path on essentially every push.
    delay_model spread;
    spread.d_source = 1e-4;
    spread.d_lut = 50.0;
    check_all_modes(pl, "spread", 4, spread);

    // Degenerate all-zero model: bucket width falls back, every event lands
    // at time 0 on tick 0, and ordering is pure seq.
    delay_model zero;
    zero.d_celem = zero.d_lut = zero.d_latch = zero.d_ee_penalty =
        zero.d_source = 0.0;
    check_all_modes(pl, "zero", 6, zero);
}

TEST(SimQueue, EventBudgetExhaustsIdentically) {
    const pl::pl_netlist pl = map_with_ee(bench::make_b05());
    const std::vector<std::vector<bool>> vectors =
        random_vectors(50, pl.sources().size(), 1);
    for (queue_kind queue : {queue_kind::binary_heap, queue_kind::calendar}) {
        sim_options opts;
        opts.queue = queue;
        opts.max_events = 1000;
        pl_simulator simulator(pl, opts);
        EXPECT_THROW(simulator.run(vectors), std::runtime_error)
            << to_string(queue);
        // Both engines stop at exactly the budget boundary.
        EXPECT_EQ(simulator.stats().events, 1001u) << to_string(queue);
    }
}

TEST(SimQueue, OversizedEventBudgetFallsBackToHeapEngine) {
    // max_events beyond the packed-key range silently selects the heap
    // engine; results are identical either way, so only equality and
    // completion are observable.
    const pl::pl_netlist pl = map_with_ee(bench::make_b02());
    const std::vector<std::vector<bool>> vectors =
        random_vectors(10, pl.sources().size(), 3);
    sim_options huge;
    huge.queue = queue_kind::calendar;
    huge.max_events = std::uint64_t{1} << 60;
    pl_simulator fallback(pl, huge);
    sim_options heap_opts;
    heap_opts.queue = queue_kind::binary_heap;
    pl_simulator reference(pl, heap_opts);
    const std::vector<wave_record> a = fallback.run(vectors);
    const std::vector<wave_record> b = reference.run(vectors);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) {
        EXPECT_EQ(a[w].outputs, b[w].outputs);
        EXPECT_EQ(a[w].output_stable, b[w].output_stable);
    }
    EXPECT_EQ(fallback.stats().events, reference.stats().events);
}

TEST(SimQueue, QueueKindStrings) {
    EXPECT_STREQ(to_string(queue_kind::binary_heap), "heap");
    EXPECT_STREQ(to_string(queue_kind::calendar), "calendar");
    EXPECT_EQ(queue_kind_from_string("heap"), queue_kind::binary_heap);
    EXPECT_EQ(queue_kind_from_string("binary_heap"), queue_kind::binary_heap);
    EXPECT_EQ(queue_kind_from_string("calendar"), queue_kind::calendar);
    EXPECT_THROW(queue_kind_from_string("splay"), std::invalid_argument);
}

TEST(SimQueue, FleetRunsBitIdenticalAcrossEnginesAndThreads) {
    std::vector<runner::fleet_job> jobs;
    runner::fleet_job b05;
    b05.id = "b05";
    b05.description = "b05";
    b05.netlist = bench::build_benchmark("b05");
    jobs.push_back(std::move(b05));
    for (int i = 0; i < 2; ++i) {
        runner::fleet_job job;
        job.id = "w" + std::to_string(i);
        job.description = job.id;
        job.netlist = wl::generate(wl::scenario_params(
            wl::all_scenarios()[static_cast<std::size_t>(i)], 90,
            40 + static_cast<std::uint64_t>(i)));
        jobs.push_back(std::move(job));
    }

    std::vector<runner::fleet_result> fleets;
    for (queue_kind queue : {queue_kind::binary_heap, queue_kind::calendar}) {
        for (unsigned threads : {1u, 2u}) {
            runner::fleet_options opts;
            opts.num_threads = threads;
            opts.experiment.measure.num_vectors = 10;
            opts.experiment.measure.sim.queue = queue;
            fleets.push_back(runner::run_fleet(jobs, opts));
        }
    }
    const runner::fleet_result& base = fleets.front();
    EXPECT_GT(base.total_sim_events, 0u);
    EXPECT_GT(base.sim_events_per_s(), 0.0);
    for (const runner::fleet_result& other : fleets) {
        ASSERT_EQ(other.results.size(), base.results.size());
        EXPECT_EQ(other.total_sim_events, base.total_sim_events);
        for (std::size_t i = 0; i < base.results.size(); ++i) {
            EXPECT_EQ(other.results[i].row.delay_no_ee,
                      base.results[i].row.delay_no_ee);
            EXPECT_EQ(other.results[i].row.delay_ee,
                      base.results[i].row.delay_ee);
            EXPECT_EQ(other.results[i].row.stats_ee.events,
                      base.results[i].row.stats_ee.events);
            EXPECT_EQ(other.results[i].row.stats_ee.ee_hits,
                      base.results[i].row.stats_ee.ee_hits);
        }
    }
}

}  // namespace
}  // namespace plee::sim
