// Tests for the support-set enumeration behind "all 14 possible support
// sets of 3 or fewer variables" (Section 3).

#include "bool/support.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

namespace plee::bf {
namespace {

TEST(Support, FourInputMasterHasFourteenCandidates) {
    // C(4,1) + C(4,2) + C(4,3) = 4 + 6 + 4 = 14 — the count quoted in the
    // paper for the LUT4 master search.
    const auto subsets = enumerate_support_subsets(0b1111, 3);
    EXPECT_EQ(subsets.size(), 14u);
    std::set<std::uint32_t> unique(subsets.begin(), subsets.end());
    EXPECT_EQ(unique.size(), 14u);
    for (std::uint32_t s : subsets) {
        EXPECT_NE(s, 0u);
        EXPECT_NE(s, 0b1111u);            // proper subsets only
        EXPECT_LE(std::popcount(s), 3);
        EXPECT_EQ(s & ~0b1111u, 0u);       // confined to the full support
    }
}

TEST(Support, ThreeInputMasterHasSixCandidates) {
    // The paper's full-adder example: {a}, {b}, {c}, {a,b}, {a,c}, {b,c}.
    const auto subsets = enumerate_support_subsets(0b111, 3);
    EXPECT_EQ(subsets.size(), 6u);
}

TEST(Support, TwoInputMaster) {
    const auto subsets = enumerate_support_subsets(0b11, 3);
    EXPECT_EQ(subsets.size(), 2u);  // {x0}, {x1}
}

TEST(Support, MaxSizeLimitsEnumeration) {
    const auto subsets = enumerate_support_subsets(0b1111, 1);
    EXPECT_EQ(subsets.size(), 4u);
    for (std::uint32_t s : subsets) EXPECT_EQ(std::popcount(s), 1);
}

TEST(Support, OrderedBySizeThenValue) {
    const auto subsets = enumerate_support_subsets(0b1111, 3);
    for (std::size_t i = 1; i < subsets.size(); ++i) {
        const int prev = std::popcount(subsets[i - 1]);
        const int cur = std::popcount(subsets[i]);
        EXPECT_TRUE(prev < cur || (prev == cur && subsets[i - 1] < subsets[i]));
    }
}

TEST(Support, NonContiguousSupportMask) {
    // A master whose live pins are 0 and 2 (pin 1 vacuous/absent).
    const auto subsets = enumerate_support_subsets(0b101, 3);
    EXPECT_EQ(subsets.size(), 2u);
    EXPECT_EQ(subsets[0], 0b001u);
    EXPECT_EQ(subsets[1], 0b100u);
}

TEST(Support, MembersAscending) {
    const auto members = support_members(0b1011);
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0], 0);
    EXPECT_EQ(members[1], 1);
    EXPECT_EQ(members[2], 3);
    EXPECT_TRUE(support_members(0).empty());
}

}  // namespace
}  // namespace plee::bf
