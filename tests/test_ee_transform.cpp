// Tests for the Early Evaluation netlist transform: trigger gates are
// attached where profitable, pairing metadata is consistent, and the marked
// graph stays live and safe (the Section 3 requirement).

#include "ee/ee_transform.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <string>

#include "bench_circuits/itc99.hpp"
#include "plogic/pl_mapper.hpp"
#include "synth/rtl.hpp"

namespace plee::ee {
namespace {

/// An 8-bit ripple adder over registered operands: the carry chain gives a
/// deep arrival profile, the classic EE target.
nl::netlist ripple_adder() {
    syn::module_builder m("adder");
    const syn::bus a = m.input_bus("a", 8);
    const syn::bus b = m.input_bus("b", 8);
    const auto r = m.add(a, b);
    m.output_bus("sum", r.sum);
    m.output("cout", r.carry);
    return m.build();
}

TEST(EeTransform, AddsTriggersToAdder) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    const std::size_t gates_before = mapped.pl.num_pl_gates();

    const ee_stats stats = apply_early_evaluation(mapped.pl);
    EXPECT_GT(stats.triggers_added, 0u);
    EXPECT_EQ(stats.triggers_added, mapped.pl.num_trigger_gates());
    EXPECT_EQ(stats.applied.size(), stats.triggers_added);
    // The paper's "PL Gates" count excludes the EE gates.
    EXPECT_EQ(mapped.pl.num_pl_gates(), gates_before);
}

TEST(EeTransform, GraphStaysLiveAndSafe) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    apply_early_evaluation(mapped.pl);
    const pl::mg_report report = mapped.pl.verify();
    EXPECT_TRUE(report.well_formed);
    EXPECT_TRUE(report.live);
    EXPECT_TRUE(report.safe);
}

TEST(EeTransform, PairingMetadataConsistent) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    const ee_stats stats = apply_early_evaluation(mapped.pl);
    for (const applied_trigger& at : stats.applied) {
        const pl::pl_gate& master = mapped.pl.gate(at.master);
        const pl::pl_gate& trig = mapped.pl.gate(at.trigger);
        EXPECT_EQ(master.trigger, at.trigger);
        EXPECT_EQ(trig.master, at.master);
        EXPECT_EQ(trig.kind, pl::gate_kind::trigger);
        EXPECT_NE(master.efire_in, pl::k_invalid_edge);
        // The efire edge runs trigger -> master.
        const pl::pl_edge& efire = mapped.pl.edge(master.efire_in);
        EXPECT_EQ(efire.from, at.trigger);
        EXPECT_EQ(efire.to, at.master);
        // Trigger taps exactly the support pins of the master.
        EXPECT_EQ(trig.data_in.size(),
                  static_cast<std::size_t>(std::popcount(at.candidate.support)));
        EXPECT_EQ(trig.function, at.candidate.function);
        // Tapped producers match the master's pins.
        std::size_t t = 0;
        for (std::size_t pin = 0; pin < master.data_in.size(); ++pin) {
            if (!(at.candidate.support & (1u << pin))) continue;
            EXPECT_EQ(mapped.pl.edge(trig.data_in[t]).from,
                      mapped.pl.edge(master.data_in[pin]).from);
            ++t;
        }
    }
}

TEST(EeTransform, ThresholdReducesTriggerCount) {
    // "Thresholding the cost function allows for a tradeoff in area versus
    // delay": monotone decrease in EE gates with rising threshold.
    std::size_t prev = std::numeric_limits<std::size_t>::max();
    for (double threshold : {0.0, 100.0, 300.0, 1e9}) {
        pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
        ee_options opts;
        opts.search.cost_threshold = threshold;
        const ee_stats stats = apply_early_evaluation(mapped.pl, opts);
        EXPECT_LE(stats.triggers_added, prev);
        prev = stats.triggers_added;
    }
    EXPECT_EQ(prev, 0u);  // an absurd threshold suppresses all EE
}

TEST(EeTransform, CubeListMethodAlsoWorks) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    ee_options opts;
    opts.search.method = trigger_method::cube_list;
    const ee_stats stats = apply_early_evaluation(mapped.pl, opts);
    EXPECT_GT(stats.triggers_added, 0u);
    EXPECT_TRUE(mapped.pl.verify().ok());
}

TEST(EeTransform, NoTriggersWithoutArrivalSkew) {
    // Single-level circuit: every master input arrives at depth 0, so no
    // candidate passes the Tmax < Mmax test and no EE gate is added.
    syn::module_builder m("flat");
    auto& a = m.arena();
    const syn::expr_id x = m.input("x");
    const syn::expr_id y = m.input("y");
    const syn::expr_id z = m.input("z");
    m.output("f", a.or_(a.and_(x, y), z));
    pl::map_result mapped = pl::map_to_phased_logic(m.build());
    const ee_stats stats = apply_early_evaluation(mapped.pl);
    EXPECT_EQ(stats.triggers_added, 0u);
    EXPECT_GT(stats.masters_considered, 0u);
}

TEST(EeTransform, AppliedCandidatesRespectPolicy) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    ee_options opts;
    opts.search.cost_threshold = 50.0;
    const ee_stats stats = apply_early_evaluation(mapped.pl, opts);
    for (const applied_trigger& at : stats.applied) {
        EXPECT_GT(at.candidate.cost, 50.0);
        EXPECT_LT(at.candidate.trigger_max_arrival, at.candidate.master_max_arrival);
        EXPECT_GT(at.candidate.covered_minterms, 0);
    }
}

/// Gate-for-gate, edge-for-edge structural equality of two PL netlists.
void expect_identical_netlists(const pl::pl_netlist& a, const pl::pl_netlist& b) {
    ASSERT_EQ(a.num_gates(), b.num_gates());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (pl::gate_id g = 0; g < a.num_gates(); ++g) {
        const pl::pl_gate& ga = a.gate(g);
        const pl::pl_gate& gb = b.gate(g);
        ASSERT_EQ(ga.kind, gb.kind) << "gate " << g;
        ASSERT_EQ(ga.name, gb.name) << "gate " << g;
        ASSERT_EQ(ga.function, gb.function) << "gate " << g;
        ASSERT_EQ(ga.trigger, gb.trigger) << "gate " << g;
        ASSERT_EQ(ga.master, gb.master) << "gate " << g;
        ASSERT_EQ(ga.efire_in, gb.efire_in) << "gate " << g;
        ASSERT_EQ(ga.trigger_support, gb.trigger_support) << "gate " << g;
        ASSERT_EQ(ga.in_edges, gb.in_edges) << "gate " << g;
        ASSERT_EQ(ga.out_edges, gb.out_edges) << "gate " << g;
        ASSERT_EQ(ga.data_in, gb.data_in) << "gate " << g;
    }
    for (pl::edge_id e = 0; e < a.num_edges(); ++e) {
        const pl::pl_edge& ea = a.edge(e);
        const pl::pl_edge& eb = b.edge(e);
        ASSERT_EQ(ea.from, eb.from) << "edge " << e;
        ASSERT_EQ(ea.to, eb.to) << "edge " << e;
        ASSERT_EQ(ea.kind, eb.kind) << "edge " << e;
        ASSERT_EQ(ea.to_pin, eb.to_pin) << "edge " << e;
        ASSERT_EQ(ea.init_token, eb.init_token) << "edge " << e;
        ASSERT_EQ(ea.init_value, eb.init_value) << "edge " << e;
    }
}

TEST(EeTransform, ParallelPassIsBitIdenticalToSequential) {
    // The batched thread-parallel search must be a pure speedup: identical
    // triggers, identical netlist, identical stats — on real circuits.
    for (const char* id : {"b05", "b07", "b10"}) {
        const nl::netlist n = bench::build_benchmark(id);

        pl::map_result seq = pl::map_to_phased_logic(n);
        ee_options seq_opts;
        seq_opts.num_threads = 1;
        const ee_stats seq_stats = apply_early_evaluation(seq.pl, seq_opts);

        for (unsigned threads : {2u, 4u, 7u}) {
            pl::map_result par = pl::map_to_phased_logic(n);
            ee_options par_opts;
            par_opts.num_threads = threads;
            const ee_stats par_stats = apply_early_evaluation(par.pl, par_opts);

            EXPECT_EQ(par_stats.masters_considered, seq_stats.masters_considered)
                << id << " threads=" << threads;
            ASSERT_EQ(par_stats.triggers_added, seq_stats.triggers_added)
                << id << " threads=" << threads;
            for (std::size_t i = 0; i < seq_stats.applied.size(); ++i) {
                ASSERT_EQ(par_stats.applied[i].master, seq_stats.applied[i].master);
                ASSERT_EQ(par_stats.applied[i].trigger, seq_stats.applied[i].trigger);
                ASSERT_EQ(par_stats.applied[i].candidate.support,
                          seq_stats.applied[i].candidate.support);
                ASSERT_EQ(par_stats.applied[i].candidate.function,
                          seq_stats.applied[i].candidate.function);
                ASSERT_EQ(par_stats.applied[i].candidate.cost,
                          seq_stats.applied[i].candidate.cost);
            }
            expect_identical_netlists(par.pl, seq.pl);
        }
    }
}

TEST(EeTransform, DefaultThreadCountMatchesSequential) {
    // num_threads = 0 (auto) must still be bit-identical.
    const nl::netlist n = bench::build_benchmark("b08");
    pl::map_result seq = pl::map_to_phased_logic(n);
    ee_options seq_opts;
    seq_opts.num_threads = 1;
    apply_early_evaluation(seq.pl, seq_opts);

    pl::map_result autop = pl::map_to_phased_logic(n);
    apply_early_evaluation(autop.pl);  // defaults: auto thread count
    expect_identical_netlists(autop.pl, seq.pl);
}

TEST(EeTransform, CacheCountersAreReported) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    const ee_stats stats = apply_early_evaluation(mapped.pl);
    // The adder reuses the same full-adder LUTs: the canonical cache must
    // have both compulsory misses and reuse hits.
    EXPECT_GT(stats.cache_misses, 0u);
    EXPECT_GT(stats.cache_hits, 0u);
    EXPECT_GT(stats.cache_entries, 0u);
}

TEST(EeTransform, IdempotencePerMasterIsEnforced) {
    pl::map_result mapped = pl::map_to_phased_logic(ripple_adder());
    const ee_stats first = apply_early_evaluation(mapped.pl);
    ASSERT_GT(first.triggers_added, 0u);
    // Re-attaching a trigger to an already-paired master must throw.
    EXPECT_THROW(mapped.pl.attach_trigger(first.applied.front().master,
                                          first.applied.front().candidate.function,
                                          first.applied.front().candidate.support),
                 std::logic_error);
}

}  // namespace
}  // namespace plee::ee
