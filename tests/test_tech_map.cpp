// Tests for the LUT4 technology mapper: functional equivalence between the
// expression DAG and the mapped netlist, fanin budgets, and sharing.

#include "synth/tech_map.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "netlist/sync_sim.hpp"

namespace plee::syn {
namespace {

struct map_fixture {
    nl::netlist n;
    expr_arena a;
    std::vector<nl::cell_id> ins;
    std::vector<expr_id> vars;

    explicit map_fixture(int num_inputs) {
        for (int i = 0; i < num_inputs; ++i) {
            ins.push_back(n.add_input("i" + std::to_string(i)));
            vars.push_back(a.var(ins.back()));
        }
    }

    /// Lowers `root`, wires it to an output and exhaustively compares the
    /// netlist against arena evaluation.
    void check_equivalent(expr_id root) {
        tech_mapper mapper(a, n, 4);
        const nl::cell_id out = mapper.lower(root);
        n.add_output("y", out);
        n.validate();
        ASSERT_TRUE(n.respects_fanin_limit(4));

        nl::sync_simulator sim(n);
        for (std::uint32_t m = 0; m < (1u << ins.size()); ++m) {
            std::vector<bool> inputs;
            std::unordered_map<nl::cell_id, bool> env;
            for (std::size_t i = 0; i < ins.size(); ++i) {
                const bool v = (m >> i) & 1u;
                inputs.push_back(v);
                env[ins[i]] = v;
            }
            sim.set_inputs(inputs);
            sim.eval();
            EXPECT_EQ(sim.value_of(out), a.eval(root, env)) << "minterm " << m;
        }
    }
};

TEST(TechMap, SingleVariableIsAWire) {
    map_fixture f(1);
    tech_mapper mapper(f.a, f.n, 4);
    EXPECT_EQ(mapper.lower(f.vars[0]), f.ins[0]);
    EXPECT_EQ(f.n.num_luts(), 0u);
}

TEST(TechMap, ConstantLowersToConstantCell) {
    map_fixture f(0);
    tech_mapper mapper(f.a, f.n, 4);
    const nl::cell_id c = mapper.lower(f.a.konst(true));
    EXPECT_EQ(f.n.at(c).kind, nl::cell_kind::constant);
    EXPECT_TRUE(f.n.at(c).const_value);
}

TEST(TechMap, PacksTreeIntoOneLut4) {
    // (a & b) | (c & d): 4 leaves, packs into exactly one LUT4.
    map_fixture f(4);
    const expr_id e = f.a.or_(f.a.and_(f.vars[0], f.vars[1]),
                              f.a.and_(f.vars[2], f.vars[3]));
    tech_mapper mapper(f.a, f.n, 4);
    mapper.lower(e);
    EXPECT_EQ(f.n.num_luts(), 1u);
}

TEST(TechMap, WideFunctionSplits) {
    map_fixture f(6);
    const expr_id e = f.a.or_all(f.vars);
    f.check_equivalent(e);
    EXPECT_GE(f.n.num_luts(), 2u);  // 6 leaves cannot fit one LUT4
}

TEST(TechMap, EquivalenceXorChain) {
    map_fixture f(6);
    f.check_equivalent(f.a.xor_all(f.vars));
}

TEST(TechMap, EquivalenceMajorityOfFive) {
    map_fixture f(5);
    std::vector<expr_id> pairs;
    for (int i = 0; i < 5; ++i) {
        for (int j = i + 1; j < 5; ++j) {
            for (int k = j + 1; k < 5; ++k) {
                pairs.push_back(f.a.and_(f.a.and_(f.vars[i], f.vars[j]), f.vars[k]));
            }
        }
    }
    f.check_equivalent(f.a.or_all(pairs));
}

TEST(TechMap, EquivalenceDeepMixedTree) {
    map_fixture f(6);
    const auto& v = f.vars;
    auto& a = f.a;
    const expr_id e =
        a.xor_(a.or_(a.and_(v[0], a.not_(v[1])), a.xor_(v[2], v[3])),
               a.and_(a.or_(v[4], v[5]), a.not_(a.and_(v[0], v[5]))));
    f.check_equivalent(e);
}

TEST(TechMap, SharedSubexpressionMaterializedOnce) {
    // share = a^b used by two independent 3-leaf cones; the mapper must not
    // duplicate it as separate LUT logic more than once.
    map_fixture f(4);
    auto& a = f.a;
    const expr_id share = a.xor_(f.vars[0], f.vars[1]);
    const expr_id left = a.and_(share, f.vars[2]);
    const expr_id right = a.or_(share, f.vars[3]);
    const expr_id root = a.xor_(left, right);
    f.check_equivalent(root);
    // All four inputs + the shared node fit comfortably in <= 3 LUTs.
    EXPECT_LE(f.n.num_luts(), 3u);
}

TEST(TechMap, IdempotentLower) {
    map_fixture f(2);
    const expr_id e = f.a.and_(f.vars[0], f.vars[1]);
    tech_mapper mapper(f.a, f.n, 4);
    const nl::cell_id c1 = mapper.lower(e);
    const nl::cell_id c2 = mapper.lower(e);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(f.n.num_luts(), 1u);
}

TEST(TechMap, RejectsBadFaninBudget) {
    map_fixture f(1);
    EXPECT_THROW(tech_mapper(f.a, f.n, 1), std::invalid_argument);
    EXPECT_THROW(tech_mapper(f.a, f.n, 9), std::invalid_argument);
}

TEST(TechMap, WideCutBudgetPacksIntoOneLut) {
    // K=7 and K=8 cuts: a reduction tree over max_fanin leaves fits one
    // multiword LUT and stays functionally exact.
    for (int k : {7, 8}) {
        map_fixture f(k);
        tech_mapper mapper(f.a, f.n, k);
        const expr_id e = f.a.xor_all(f.vars);
        const nl::cell_id out = mapper.lower(e);
        f.n.add_output("y", out);
        f.n.validate();
        EXPECT_TRUE(f.n.respects_fanin_limit(k));
        EXPECT_EQ(f.n.num_luts(), 1u) << "k=" << k;

        nl::sync_simulator sim(f.n);
        for (std::uint32_t m = 0; m < (1u << k); ++m) {
            std::vector<bool> inputs;
            for (int i = 0; i < k; ++i) inputs.push_back((m >> i) & 1u);
            sim.set_inputs(inputs);
            sim.eval();
            EXPECT_EQ(sim.value_of(out), (std::popcount(m) & 1) != 0)
                << "k=" << k << " m=" << m;
        }
    }
}

TEST(TechMap, Lut2BudgetStillCorrect) {
    map_fixture f(5);
    const expr_id e = f.a.or_all(f.vars);
    tech_mapper mapper(f.a, f.n, 2);
    const nl::cell_id out = mapper.lower(e);
    f.n.add_output("y", out);
    f.n.validate();
    EXPECT_TRUE(f.n.respects_fanin_limit(2));

    nl::sync_simulator sim(f.n);
    for (std::uint32_t m = 0; m < 32; ++m) {
        std::vector<bool> inputs;
        for (std::size_t i = 0; i < 5; ++i) inputs.push_back((m >> i) & 1u);
        sim.set_inputs(inputs);
        sim.eval();
        EXPECT_EQ(sim.value_of(out), m != 0);
    }
}

// Property sweep: pseudo-random expression DAGs stay equivalent.
class TechMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TechMapProperty, RandomDagEquivalence) {
    map_fixture f(6);
    auto& a = f.a;
    std::uint64_t state = GetParam();
    auto rnd = [&] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(state >> 33);
    };
    std::vector<expr_id> pool = f.vars;
    for (int step = 0; step < 24; ++step) {
        const expr_id x = pool[rnd() % pool.size()];
        const expr_id y = pool[rnd() % pool.size()];
        switch (rnd() % 4) {
            case 0: pool.push_back(a.and_(x, y)); break;
            case 1: pool.push_back(a.or_(x, y)); break;
            case 2: pool.push_back(a.xor_(x, y)); break;
            case 3: pool.push_back(a.not_(x)); break;
        }
    }
    f.check_equivalent(pool.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechMapProperty,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u, 97u, 131u,
                                           197u, 251u, 313u));

}  // namespace
}  // namespace plee::syn
