// Tests for the measurement harness (Section 4's protocol): random stimulus
// generation, delay statistics, and the golden functional cross-check.

#include "sim/measure.hpp"

#include <gtest/gtest.h>

#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "synth/rtl.hpp"

namespace plee::sim {
namespace {

nl::netlist alu_netlist() {
    syn::module_builder m("alu");
    const syn::bus a = m.input_bus("a", 6);
    const syn::bus b = m.input_bus("b", 6);
    const syn::expr_id sel = m.input("sel");
    const syn::bus sum = m.add(a, b).sum;
    const syn::bus dif = m.sub(a, b).diff;
    m.output_bus("y", m.mux2(sel, sum, dif));
    m.output("eq", m.eq(a, b));
    return m.build();
}

TEST(Measure, RandomVectorsAreDeterministicPerSeed) {
    const auto v1 = random_vectors(10, 8, 42);
    const auto v2 = random_vectors(10, 8, 42);
    const auto v3 = random_vectors(10, 8, 43);
    EXPECT_EQ(v1, v2);
    EXPECT_NE(v1, v3);
    EXPECT_EQ(v1.size(), 10u);
    EXPECT_EQ(v1.front().size(), 8u);
}

TEST(Measure, RandomVectorsMix) {
    const auto vs = random_vectors(64, 16, 7);
    std::size_t ones = 0;
    for (const auto& v : vs) {
        for (bool b : v) ones += b;
    }
    // Bernoulli(1/2): grossly unbalanced output would indicate a bug.
    EXPECT_GT(ones, 64u * 16u / 4);
    EXPECT_LT(ones, 64u * 16u * 3 / 4);
}

TEST(Measure, StatisticsAreConsistent) {
    const nl::netlist n = alu_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    measure_options opts;
    opts.num_vectors = 50;
    const measure_result r = measure_average_delay(mapped.pl, &n, opts);

    EXPECT_EQ(r.delays.size(), 50u);
    EXPECT_EQ(r.mismatched_waves, 0u);
    EXPECT_GT(r.avg_delay, 0.0);
    EXPECT_LE(r.min_delay, r.avg_delay);
    EXPECT_GE(r.max_delay, r.avg_delay);
    EXPECT_GE(r.stddev, 0.0);

    double sum = 0;
    for (double d : r.delays) sum += d;
    EXPECT_NEAR(sum / 50.0, r.avg_delay, 1e-9);
}

TEST(Measure, GoldenComparisonPassesThroughEe) {
    const nl::netlist n = alu_netlist();
    pl::map_result mapped = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(mapped.pl);
    measure_options opts;
    opts.num_vectors = 100;  // the paper's count
    const measure_result r = measure_average_delay(mapped.pl, &n, opts);
    EXPECT_EQ(r.mismatched_waves, 0u);
    EXPECT_GT(r.stats.ee_hits + r.stats.ee_misses, 0u);
}

TEST(Measure, NullGoldenSkipsComparison) {
    const nl::netlist n = alu_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    measure_options opts;
    opts.num_vectors = 5;
    const measure_result r = measure_average_delay(mapped.pl, nullptr, opts);
    EXPECT_EQ(r.mismatched_waves, 0u);
    EXPECT_EQ(r.delays.size(), 5u);
}

TEST(Measure, DelayIsSeedStableForFixedCircuit) {
    const nl::netlist n = alu_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    measure_options opts;
    opts.num_vectors = 30;
    const measure_result r1 = measure_average_delay(mapped.pl, &n, opts);
    const measure_result r2 = measure_average_delay(mapped.pl, &n, opts);
    EXPECT_DOUBLE_EQ(r1.avg_delay, r2.avg_delay);
}

TEST(Measure, DelayModelScalesResults) {
    const nl::netlist n = alu_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    measure_options slow;
    slow.num_vectors = 20;
    slow.sim.delays.d_lut = 10.0;  // stretch the LUT delay
    measure_options fast;
    fast.num_vectors = 20;
    const measure_result rs = measure_average_delay(mapped.pl, &n, slow);
    const measure_result rf = measure_average_delay(mapped.pl, &n, fast);
    EXPECT_GT(rs.avg_delay, rf.avg_delay * 2);
}

}  // namespace
}  // namespace plee::sim
