// Unit tests for cubes, cube lists and the Quine–McCluskey cover extraction
// that feeds the paper's Table 2 trigger derivation.

#include "bool/cube.hpp"
#include "bool/cube_list.hpp"

#include <gtest/gtest.h>

namespace plee::bf {
namespace {

TEST(Cube, ParseAndPrintPositionalNotation) {
    const cube c = cube::from_string("00-");
    EXPECT_EQ(c.to_string(3), "00-");
    EXPECT_EQ(c.num_literals(), 2);
    EXPECT_EQ(c.num_minterms(3), 2u);
    EXPECT_TRUE(c.contains(0b000));
    EXPECT_TRUE(c.contains(0b100));  // c (var2) free
    EXPECT_FALSE(c.contains(0b001));
}

TEST(Cube, MintermCube) {
    const cube c = cube::minterm(3, 0b101);
    EXPECT_EQ(c.to_string(3), "101");
    EXPECT_EQ(c.num_minterms(3), 1u);
    EXPECT_TRUE(c.contains(0b101));
    EXPECT_FALSE(c.contains(0b100));
}

TEST(Cube, RejectsInvalidConstruction) {
    EXPECT_THROW(cube(0b01, 0b10), std::invalid_argument);  // value outside care
    EXPECT_THROW(cube::from_string("0x-"), std::invalid_argument);
    EXPECT_THROW(cube::minterm(2, 4), std::invalid_argument);
}

TEST(Cube, WithinSupport) {
    const cube ab = cube::from_string("11-");
    EXPECT_TRUE(ab.within_support(0b011));   // {a,b}
    EXPECT_TRUE(ab.within_support(0b111));
    EXPECT_FALSE(ab.within_support(0b101));  // {a,c} misses b
}

TEST(Cube, CoversAndIntersects) {
    const cube broad = cube::from_string("1--");
    const cube narrow = cube::from_string("10-");
    const cube other = cube::from_string("0--");
    EXPECT_TRUE(broad.covers(narrow));
    EXPECT_FALSE(narrow.covers(broad));
    EXPECT_TRUE(broad.intersects(narrow));
    EXPECT_FALSE(broad.intersects(other));
    EXPECT_TRUE(cube().covers(broad));  // universal cube covers everything
}

TEST(Cube, TruthTableForm) {
    const cube c = cube::from_string("1-0");
    const truth_table t = c.to_truth_table(3);
    for (std::uint32_t m = 0; m < 8; ++m) {
        EXPECT_EQ(t.eval(m), c.contains(m));
    }
}

TEST(CubeList, EvalIsDisjunction) {
    cube_list cl(3);
    cl.add(cube::from_string("00-"));
    cl.add(cube::from_string("11-"));
    EXPECT_TRUE(cl.eval(0b000));
    EXPECT_TRUE(cl.eval(0b011));
    EXPECT_FALSE(cl.eval(0b001));
    EXPECT_EQ(cl.count_covered_minterms(), 4);
    EXPECT_EQ(cl.to_string(), "{00-, 11-}");
}

TEST(CubeList, RestrictedToSupport) {
    cube_list cl(3);
    cl.add(cube::from_string("00-"));   // {a,b}
    cl.add(cube::from_string("1-1"));   // {a,c}
    cl.add(cube::from_string("-11"));   // {b,c}
    const cube_list ab = cl.restricted_to_support(0b011);
    ASSERT_EQ(ab.size(), 1u);
    EXPECT_EQ(ab.cubes().front().to_string(3), "00-");
}

TEST(QuineMcCluskey, PrimesOfXor2) {
    // x0 XOR x1 has no merging: primes are the two minterms.
    const truth_table f = truth_table::variable(2, 0) ^ truth_table::variable(2, 1);
    const std::vector<cube> primes = prime_implicants(f);
    EXPECT_EQ(primes.size(), 2u);
}

TEST(QuineMcCluskey, PrimesOfOr2) {
    // x0 OR x1: primes are 1- and -1.
    const truth_table f = truth_table::variable(2, 0) | truth_table::variable(2, 1);
    const std::vector<cube> primes = prime_implicants(f);
    EXPECT_EQ(primes.size(), 2u);
    for (const cube& p : primes) EXPECT_EQ(p.num_literals(), 1);
}

TEST(QuineMcCluskey, CoverEqualsFunctionAcrossShapes) {
    const std::vector<std::string> shapes = {
        "00010111",          // full-adder carry
        "01101001",          // 3-var parity (worst case: all minterms prime)
        "11111111",          // constant one
        "00000000",          // constant zero
        "0001011101111111",  // 4-var majority-ish
        "0110100110010110",  // 4-var parity
    };
    for (const std::string& rows : shapes) {
        const truth_table f = truth_table::from_string(rows);
        const cube_list cover = isop_cover(f);
        EXPECT_EQ(cover.to_truth_table(), f) << rows;
    }
}

TEST(QuineMcCluskey, FullAdderCarryCoverMatchesPaperTable2) {
    // Table 2 lists the master ON cubes {11-, 1-1, -11} and OFF cubes
    // {00-, 010, 100}; our greedy cover must reproduce the ON/OFF structure:
    // the two cubes confined to {a,b} are "11-" (ON) and "00-" (OFF).
    const truth_table a = truth_table::variable(3, 0);
    const truth_table b = truth_table::variable(3, 1);
    const truth_table c = truth_table::variable(3, 2);
    const truth_table carry = (c & (a | b)) | (a & b);

    const on_off_cover cover = make_on_off_cover(carry);
    EXPECT_EQ(cover.on.to_truth_table(), carry);
    EXPECT_EQ(cover.off.to_truth_table(), ~carry);

    const cube_list on_ab = cover.on.restricted_to_support(0b011);
    ASSERT_EQ(on_ab.size(), 1u);
    EXPECT_EQ(on_ab.cubes().front().to_string(3), "11-");

    const cube_list off_ab = cover.off.restricted_to_support(0b011);
    ASSERT_EQ(off_ab.size(), 1u);
    EXPECT_EQ(off_ab.cubes().front().to_string(3), "00-");

    // Each of those two cubes covers 2 of the 8 minterms in the 3-var space
    // (Table 2's "Coverage" column), 4/8 = 50% in total.
    EXPECT_EQ(on_ab.cubes().front().num_minterms(3), 2u);
    EXPECT_EQ(off_ab.cubes().front().num_minterms(3), 2u);
}

// Parameterized QM property: cover == function for pseudo-random tables.
class QmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QmProperty, CoverIsExact) {
    std::uint64_t x = GetParam();
    for (int arity = 2; arity <= 5; ++arity) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t mask =
            arity == 6 ? ~0ull : ((1ull << (1 << arity)) - 1);
        const truth_table f(arity, x & mask);
        EXPECT_EQ(isop_cover(f).to_truth_table(), f) << "arity " << arity;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

}  // namespace
}  // namespace plee::bf
