// Tests for marked-graph theory: firing semantics and the well-formed /
// live / safe verification that Section 2 requires of every PL netlist.

#include "plogic/marked_graph.hpp"

#include <gtest/gtest.h>

namespace plee::pl {
namespace {

// A two-gate ring: a -> b (1 token), b -> a (0 tokens).
marked_graph make_ring2(int tokens_ab, int tokens_ba) {
    marked_graph g(2);
    g.add_edge(0, 1, tokens_ab);
    g.add_edge(1, 0, tokens_ba);
    return g;
}

TEST(MarkedGraph, RingWithOneTokenIsLiveAndSafe) {
    const mg_report r = make_ring2(1, 0).verify();
    EXPECT_TRUE(r.well_formed);
    EXPECT_TRUE(r.live);
    EXPECT_TRUE(r.safe);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.violation.empty());
}

TEST(MarkedGraph, TokenFreeRingIsNotLive) {
    const mg_report r = make_ring2(0, 0).verify();
    EXPECT_TRUE(r.well_formed);
    EXPECT_FALSE(r.live);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.violation.empty());
}

TEST(MarkedGraph, DoubleTokenRingIsNotSafe) {
    const mg_report r = make_ring2(1, 1).verify();
    EXPECT_TRUE(r.well_formed);
    EXPECT_TRUE(r.live);
    EXPECT_FALSE(r.safe);
}

TEST(MarkedGraph, EdgeWithTwoTokensIsNotSafe) {
    const mg_report r = make_ring2(2, 0).verify();
    EXPECT_FALSE(r.safe);
}

TEST(MarkedGraph, DanglingEdgeIsNotWellFormed) {
    marked_graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 0, 0);
    g.add_edge(1, 2, 1);  // node 2 has no path back: not on any circuit
    const mg_report r = g.verify();
    EXPECT_FALSE(r.well_formed);
}

TEST(MarkedGraph, SelfLoopWithTokenIsFine) {
    marked_graph g(1);
    g.add_edge(0, 0, 1);
    const mg_report r = g.verify();
    EXPECT_TRUE(r.ok());
}

TEST(MarkedGraph, LongPipelineAlternatingTokens) {
    // 6-stage ring with forward data edges (tokens on stage 0 only) and
    // backward ack edges carrying the complementary marking: live and safe.
    marked_graph g(6);
    for (node_id i = 0; i < 6; ++i) {
        const node_id j = (i + 1) % 6;
        const int m = i == 0 ? 1 : 0;
        g.add_edge(i, j, m);
        g.add_edge(j, i, 1 - m);
    }
    EXPECT_TRUE(g.verify().ok());
}

TEST(MarkedGraph, ThreeRingWithTwoTokensIsNotSafe) {
    // The only cycle carries two tokens, so both can pile up on the edge
    // into node 0 (occupancy bound = min cycle count = 2): unsafe.
    marked_graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(2, 0, 0);
    const mg_report r = g.verify();
    EXPECT_TRUE(r.well_formed);
    EXPECT_TRUE(r.live);
    EXPECT_FALSE(r.safe);
}

TEST(MarkedGraph, TwoTokenOuterCycleWithSafeInnerCyclesIsSafe) {
    // The outer cycle 0->1->2->0 carries two tokens, but every edge also
    // lies on a single-token 2-cycle, so per the occupancy theorem no edge
    // ever holds more than one token: the marking is safe.
    marked_graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 0, 0);
    g.add_edge(1, 2, 1);
    g.add_edge(2, 1, 0);
    g.add_edge(2, 0, 0);
    g.add_edge(0, 2, 1);
    const mg_report r = g.verify();
    EXPECT_TRUE(r.ok());
}

TEST(MarkedGraph, FiringMovesTokens) {
    marked_graph g = make_ring2(1, 0);
    EXPECT_TRUE(g.enabled(1));
    EXPECT_FALSE(g.enabled(0));
    EXPECT_TRUE(g.fire(1));
    EXPECT_EQ(g.edges()[0].tokens, 0);
    EXPECT_EQ(g.edges()[1].tokens, 1);
    EXPECT_TRUE(g.enabled(0));
    EXPECT_FALSE(g.fire(1));  // no longer enabled
}

TEST(MarkedGraph, TokenCountOnCyclesInvariantUnderFiring) {
    marked_graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 0);
    g.add_edge(2, 0, 0);
    const int before = g.total_tokens();
    ASSERT_TRUE(g.fire(1));
    ASSERT_TRUE(g.fire(2));
    ASSERT_TRUE(g.fire(0));
    EXPECT_EQ(g.total_tokens(), before);
    EXPECT_TRUE(g.verify().ok());
}

TEST(MarkedGraph, LivenessPreservedByFiring) {
    // Firing never changes cycle token counts, so verify() is invariant.
    marked_graph g(4);
    for (node_id i = 0; i < 4; ++i) {
        const node_id j = (i + 1) % 4;
        g.add_edge(i, j, i == 0 ? 1 : 0);
        g.add_edge(j, i, i == 0 ? 0 : 1);
    }
    ASSERT_TRUE(g.verify().ok());
    for (int round = 0; round < 8; ++round) {
        for (node_id n = 0; n < 4; ++n) {
            if (g.enabled(n)) g.fire(n);
        }
        EXPECT_TRUE(g.verify().ok()) << "round " << round;
    }
}

TEST(MarkedGraph, RejectsBadEdges) {
    marked_graph g(2);
    EXPECT_THROW(g.add_edge(0, 5, 0), std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 1, -1), std::invalid_argument);
}

TEST(MarkedGraph, AddNodeGrowsGraph) {
    marked_graph g(1);
    const node_id n = g.add_node();
    EXPECT_EQ(n, 1u);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 0, 0);
    EXPECT_TRUE(g.verify().ok());
}

}  // namespace
}  // namespace plee::pl
