// Unit tests for the synchronous netlist container: structure, validation,
// topological analysis, and the arrival-depth model used by Equation 1.

#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace plee::nl {
namespace {

bf::truth_table and2() {
    return bf::truth_table::variable(2, 0) & bf::truth_table::variable(2, 1);
}
bf::truth_table xor2() {
    return bf::truth_table::variable(2, 0) ^ bf::truth_table::variable(2, 1);
}

TEST(Netlist, BuildSmallCombinational) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id g = n.add_lut(and2(), {a, b});
    n.add_output("y", g);
    EXPECT_EQ(n.num_cells(), 4u);
    EXPECT_EQ(n.num_luts(), 1u);
    EXPECT_EQ(n.num_pl_mappable(), 1u);
    EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, LutArityMustMatchFanins) {
    netlist n;
    const cell_id a = n.add_input("a");
    EXPECT_THROW(n.add_lut(and2(), {a}), std::invalid_argument);
    EXPECT_THROW(n.add_lut(bf::truth_table(0), {}), std::invalid_argument);
}

TEST(Netlist, ValidateCatchesUnconnectedDff) {
    netlist n;
    n.add_input("a");
    const cell_id d = n.add_dff(k_invalid_cell, false, "r");
    n.add_output("q", d);
    EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Netlist, ValidateCatchesDuplicatePortNames) {
    netlist n;
    const cell_id a = n.add_input("x");
    n.add_output("x", a);
    EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Netlist, ValidateCatchesOutputUsedAsFanin) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id y = n.add_output("y", a);
    const cell_id b = n.add_input("b");
    n.add_lut(and2(), {y, b});
    EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Netlist, DffBreaksCombinationalCycles) {
    // q = dff(q xor a): a legal sequential loop.
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id q = n.add_dff(k_invalid_cell, false, "q");
    const cell_id x = n.add_lut(xor2(), {q, a});
    n.set_dff_input(q, x);
    n.add_output("y", q);
    EXPECT_NO_THROW(n.validate());
    EXPECT_EQ(n.dffs().size(), 1u);
}

TEST(Netlist, CombinationalCycleDetected) {
    netlist n;
    const cell_id a = n.add_input("a");
    // Build two LUTs then rewire one to form a loop via the other.
    const cell_id g1 = n.add_lut(and2(), {a, a});
    const cell_id g2 = n.add_lut(and2(), {g1, a});
    (void)g2;
    // There is no public rewire for LUTs (by design); instead check that a
    // DFF-free cycle cannot be expressed accidentally: the only legal cycle
    // construct is set_dff_input, which topo_order tolerates.
    EXPECT_NO_THROW(n.topo_order());
}

TEST(Netlist, TopoOrderRespectsDependencies) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id g1 = n.add_lut(and2(), {a, b});
    const cell_id g2 = n.add_lut(xor2(), {g1, a});
    const cell_id g3 = n.add_lut(xor2(), {g2, g1});
    n.add_output("y", g3);

    const std::vector<cell_id> order = n.topo_order();
    auto pos = [&](cell_id id) {
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (order[i] == id) return i;
        }
        return order.size();
    };
    EXPECT_LT(pos(a), pos(g1));
    EXPECT_LT(pos(g1), pos(g2));
    EXPECT_LT(pos(g2), pos(g3));
    EXPECT_EQ(order.size(), n.num_cells());
}

TEST(Netlist, CombDepthMatchesLongestPath) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id q = n.add_dff(k_invalid_cell, true, "q");
    const cell_id g1 = n.add_lut(and2(), {a, b});   // depth 1
    const cell_id g2 = n.add_lut(xor2(), {g1, q});  // depth 2
    const cell_id g3 = n.add_lut(xor2(), {g2, b});  // depth 3
    n.set_dff_input(q, g3);
    n.add_output("y", g3);

    const std::vector<int> depth = n.comb_depth();
    EXPECT_EQ(depth[a], 0);
    EXPECT_EQ(depth[q], 0);  // register outputs are wave sources
    EXPECT_EQ(depth[g1], 1);
    EXPECT_EQ(depth[g2], 2);
    EXPECT_EQ(depth[g3], 3);
    EXPECT_EQ(depth[n.outputs().front()], 3);
}

TEST(Netlist, FaninLimitQuery) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id c = n.add_input("c");
    const cell_id d = n.add_input("d");
    const cell_id e = n.add_input("e");
    const bf::truth_table or5 = bf::truth_table::from_function(
        5, [](std::uint32_t m) { return m != 0; });
    n.add_lut(or5, {a, b, c, d, e});
    EXPECT_TRUE(n.respects_fanin_limit(6));
    EXPECT_FALSE(n.respects_fanin_limit(4));
}

TEST(Netlist, DotExportMentionsEveryCell) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id g = n.add_lut(~bf::truth_table::variable(1, 0), {a});
    n.add_output("y", g);
    const std::string dot = n.to_dot("g");
    EXPECT_NE(dot.find("IN a"), std::string::npos);
    EXPECT_NE(dot.find("LUT1"), std::string::npos);
    EXPECT_NE(dot.find("OUT y"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Netlist, ConstantCells) {
    netlist n;
    const cell_id one = n.add_constant(true);
    n.add_output("y", one);
    EXPECT_NO_THROW(n.validate());
    EXPECT_EQ(n.at(one).kind, cell_kind::constant);
    EXPECT_TRUE(n.at(one).const_value);
}

}  // namespace
}  // namespace plee::nl
