// Integration tests: every ITC99-style benchmark runs through the full
// pipeline (RTL build -> LUT4 netlist -> PL mapping -> EE -> event
// simulation) with wave-by-wave equivalence against the synchronous golden
// model.  This is the end-to-end guarantee behind every Table 3 row.

#include "bench_circuits/itc99.hpp"

#include <gtest/gtest.h>

#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"

namespace plee::bench {
namespace {

TEST(Benchmarks, SuiteHasFifteenEntries) {
    const auto& suite = itc99_suite();
    ASSERT_EQ(suite.size(), 15u);
    EXPECT_EQ(suite.front().id, "b01");
    EXPECT_EQ(suite.back().id, "b15");
    EXPECT_EQ(suite.back().description, "80386 processor (subset)");
}

TEST(Benchmarks, BuildByIdAndUnknownIdThrows) {
    EXPECT_NO_THROW(build_benchmark("b06"));
    EXPECT_THROW(build_benchmark("b99"), std::invalid_argument);
}

TEST(Benchmarks, AllNetlistsValidateAndFitLut4) {
    for (const auto& info : itc99_suite()) {
        const nl::netlist n = info.build();
        EXPECT_NO_THROW(n.validate()) << info.id;
        EXPECT_TRUE(n.respects_fanin_limit(4)) << info.id;
        EXPECT_GT(n.num_pl_mappable(), 0u) << info.id;
        EXPECT_FALSE(n.inputs().empty()) << info.id;
        EXPECT_FALSE(n.outputs().empty()) << info.id;
    }
}

TEST(Benchmarks, SizesAreOrderedLikeThePaper) {
    // The paper's Table 3 has the two processor subsets dominating the suite
    // (3360 and 5648 PL gates) and b15 larger than b14; our recreations must
    // preserve that ordering and rough magnitude.
    const std::size_t b14 = make_b14().num_pl_mappable();
    const std::size_t b15 = make_b15().num_pl_mappable();
    const std::size_t b01 = make_b01().num_pl_mappable();
    const std::size_t b06 = make_b06().num_pl_mappable();
    EXPECT_GT(b14, 300u);
    EXPECT_GT(b15, b14);
    EXPECT_LT(b01, 150u);
    EXPECT_LT(b06, 40u);
}

// Parameterized end-to-end equivalence across the whole suite.
class BenchmarkPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkPipeline, PlMappingIsLiveSafeAndEquivalent) {
    const nl::netlist n = build_benchmark(GetParam());
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    EXPECT_TRUE(mapped.pl.verify().ok());

    // measure_average_delay throws if any wave diverges from the golden
    // synchronous simulation.
    sim::measure_options opts;
    opts.num_vectors = 40;
    const sim::measure_result r =
        sim::measure_average_delay(mapped.pl, &n, opts);
    EXPECT_EQ(r.mismatched_waves, 0u);
    EXPECT_GT(r.avg_delay, 0.0);
}

TEST_P(BenchmarkPipeline, EarlyEvaluationPreservesBehaviour) {
    const nl::netlist n = build_benchmark(GetParam());
    pl::map_result mapped = pl::map_to_phased_logic(n);
    const ee::ee_stats stats = ee::apply_early_evaluation(mapped.pl);
    EXPECT_TRUE(mapped.pl.verify().ok());

    sim::measure_options opts;
    opts.num_vectors = 40;
    const sim::measure_result r =
        sim::measure_average_delay(mapped.pl, &n, opts);
    EXPECT_EQ(r.mismatched_waves, 0u);
    // EE hit/miss counters only tick where triggers were added.
    if (stats.triggers_added > 0) {
        EXPECT_GT(r.stats.ee_hits + r.stats.ee_misses, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Itc99, BenchmarkPipeline,
                         ::testing::Values("b01", "b02", "b03", "b04", "b05",
                                           "b06", "b07", "b08", "b09", "b10",
                                           "b11", "b12", "b13"));

// The CPU subsets are heavier; exercise them with fewer vectors.
class CpuPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(CpuPipeline, EndToEndEquivalence) {
    const nl::netlist n = build_benchmark(GetParam());
    pl::map_result mapped = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(mapped.pl);
    EXPECT_TRUE(mapped.pl.verify().ok());

    sim::measure_options opts;
    opts.num_vectors = 10;
    const sim::measure_result r =
        sim::measure_average_delay(mapped.pl, &n, opts);
    EXPECT_EQ(r.mismatched_waves, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cpus, CpuPipeline, ::testing::Values("b14", "b15"));

TEST(Benchmarks, B01ReferenceWalk) {
    // Spot-check b01 against a hand-coded state walk: equal streams keep
    // outp asserted; the same stream leading twice raises overflw.
    const nl::netlist n = make_b01();
    nl::sync_simulator sim(n);
    // Equal bits: stay in the eq states (outp = 1, overflw = 0).
    for (int i = 0; i < 4; ++i) {
        const std::vector<bool> out = sim.cycle({true, true});
        EXPECT_TRUE(out[0]) << i;
        EXPECT_FALSE(out[1]) << i;
    }
    // Stream 1 leads twice in a row: overflow state reached.
    sim.cycle({true, false});
    sim.cycle({true, false});
    const std::vector<bool> out = sim.cycle({false, false});
    EXPECT_TRUE(out[1]);  // overflw
}

TEST(Benchmarks, B02RecognizesBcdDigits) {
    const nl::netlist n = make_b02();
    nl::sync_simulator sim(n);
    auto feed_nibble = [&](unsigned value) {
        bool valid_at_last = false;
        for (int pos = 3; pos >= 0; --pos) {
            const std::vector<bool> out = sim.cycle({((value >> pos) & 1u) != 0});
            valid_at_last = out[0];
        }
        return valid_at_last;
    };
    // The machine reports validity while the last bit arrives, based on the
    // first three bits (b0 never disqualifies a BCD digit).
    for (unsigned v = 0; v < 16; ++v) {
        const bool bcd = v <= 9;
        EXPECT_EQ(feed_nibble(v), bcd) << "nibble " << v;
    }
}

TEST(Benchmarks, B04TracksMinMax) {
    const nl::netlist n = make_b04();
    nl::sync_simulator sim(n);
    auto cycle_with = [&](bool restart, bool enable, unsigned data) {
        std::vector<bool> in = {restart, enable};
        for (int i = 0; i < 16; ++i) in.push_back((data >> i) & 1u);
        return sim.cycle(in);
    };
    auto word = [](const std::vector<bool>& bits, std::size_t at) {
        unsigned v = 0;
        for (int i = 0; i < 16; ++i) v |= static_cast<unsigned>(bits[at + i]) << i;
        return v;
    };
    cycle_with(true, false, 0);  // arm
    cycle_with(false, true, 4100);
    cycle_with(false, true, 17);
    const auto out = cycle_with(false, true, 60000);  // pre-edge: min/max of {4100,17}
    EXPECT_EQ(word(out, 0), 17u);
    EXPECT_EQ(word(out, 16), 4100u);
}

}  // namespace
}  // namespace plee::bench
