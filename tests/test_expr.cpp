// Tests for the structurally-hashed expression arena.

#include "synth/expr.hpp"

#include <gtest/gtest.h>

namespace plee::syn {
namespace {

TEST(Expr, StructuralHashingUnifiesEqualTerms) {
    expr_arena a;
    const expr_id x = a.var(0);
    const expr_id y = a.var(1);
    EXPECT_EQ(a.and_(x, y), a.and_(x, y));
    EXPECT_EQ(a.and_(x, y), a.and_(y, x));  // commutative normal form
    EXPECT_EQ(a.var(0), x);
}

TEST(Expr, ConstantFolding) {
    expr_arena a;
    const expr_id x = a.var(0);
    const expr_id t = a.konst(true);
    const expr_id f = a.konst(false);
    EXPECT_EQ(a.and_(x, t), x);
    EXPECT_EQ(a.and_(x, f), f);
    EXPECT_EQ(a.or_(x, f), x);
    EXPECT_EQ(a.or_(x, t), t);
    EXPECT_EQ(a.xor_(x, f), x);
    EXPECT_EQ(a.xor_(x, t), a.not_(x));
    EXPECT_EQ(a.not_(t), f);
}

TEST(Expr, Simplifications) {
    expr_arena a;
    const expr_id x = a.var(0);
    EXPECT_EQ(a.and_(x, x), x);
    EXPECT_EQ(a.or_(x, x), x);
    EXPECT_EQ(a.xor_(x, x), a.konst(false));
    EXPECT_EQ(a.not_(a.not_(x)), x);  // involution
}

TEST(Expr, EvalMatchesSemantics) {
    expr_arena a;
    const expr_id x = a.var(10);
    const expr_id y = a.var(11);
    const expr_id e = a.or_(a.and_(x, a.not_(y)), a.xor_(x, y));
    for (bool xv : {false, true}) {
        for (bool yv : {false, true}) {
            const bool expected = (xv && !yv) || (xv != yv);
            EXPECT_EQ(a.eval(e, {{10, xv}, {11, yv}}), expected);
        }
    }
}

TEST(Expr, EvalRejectsUnassignedVariable) {
    expr_arena a;
    const expr_id x = a.var(7);
    EXPECT_THROW(a.eval(x, {}), std::invalid_argument);
}

TEST(Expr, MuxSemantics) {
    expr_arena a;
    const expr_id s = a.var(0);
    const expr_id p = a.var(1);
    const expr_id q = a.var(2);
    const expr_id m = a.mux(s, p, q);
    for (int bits = 0; bits < 8; ++bits) {
        const bool sv = bits & 1, pv = bits & 2, qv = bits & 4;
        EXPECT_EQ(a.eval(m, {{0, sv}, {1, pv}, {2, qv}}), sv ? pv : qv);
    }
    EXPECT_EQ(a.mux(s, p, p), p);  // both branches equal
}

TEST(Expr, BalancedReductions) {
    expr_arena a;
    std::vector<expr_id> xs;
    for (nl::cell_id i = 0; i < 5; ++i) xs.push_back(a.var(i));
    const expr_id all = a.and_all(xs);
    const expr_id any = a.or_all(xs);
    const expr_id parity = a.xor_all(xs);

    for (std::uint32_t m = 0; m < 32; ++m) {
        std::unordered_map<nl::cell_id, bool> env;
        int ones = 0;
        for (nl::cell_id i = 0; i < 5; ++i) {
            const bool v = (m >> i) & 1u;
            env[i] = v;
            ones += v;
        }
        EXPECT_EQ(a.eval(all, env), ones == 5);
        EXPECT_EQ(a.eval(any, env), ones > 0);
        EXPECT_EQ(a.eval(parity, env), (ones % 2) == 1);
    }
}

TEST(Expr, EmptyReductionsYieldIdentity) {
    expr_arena a;
    EXPECT_EQ(a.and_all({}), a.konst(true));
    EXPECT_EQ(a.or_all({}), a.konst(false));
    EXPECT_EQ(a.xor_all({}), a.konst(false));
}

TEST(Expr, UseCountsTrackSharing) {
    expr_arena a;
    const expr_id x = a.var(0);
    const expr_id y = a.var(1);
    const expr_id shared = a.and_(x, y);
    a.or_(shared, x);
    a.xor_(shared, y);
    EXPECT_GE(a.at(shared).use_count, 2u);
}

}  // namespace
}  // namespace plee::syn
