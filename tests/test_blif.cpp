// Tests for BLIF import/export: round-trip functional equivalence, cover
// polarity handling, latches, constants and malformed-input diagnostics.

#include "netlist/blif.hpp"

#include <gtest/gtest.h>

#include "bench_circuits/itc99.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"
#include "synth/rtl.hpp"

namespace plee::nl {
namespace {

void expect_equivalent(const netlist& a, const netlist& b, std::size_t waves,
                       std::uint64_t seed) {
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    sync_simulator sa(a);
    sync_simulator sb(b);
    for (const auto& v : sim::random_vectors(waves, a.inputs().size(), seed)) {
        EXPECT_EQ(sa.cycle(v), sb.cycle(v));
    }
}

TEST(Blif, ExportMentionsAllSections) {
    syn::module_builder m("x");
    const syn::bus a = m.input_bus("a", 2);
    const syn::bus q = m.new_register("q", 2, 1);
    m.connect_register(q, m.bw_xor(q, a));
    m.output_bus("y", q);
    const netlist n = m.build();

    const std::string text = to_blif(n, "unit");
    EXPECT_NE(text.find(".model unit"), std::string::npos);
    EXPECT_NE(text.find(".inputs a[0] a[1]"), std::string::npos);
    EXPECT_NE(text.find(".outputs y[0] y[1]"), std::string::npos);
    EXPECT_NE(text.find(".latch"), std::string::npos);
    EXPECT_NE(text.find(".names"), std::string::npos);
    EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Blif, RoundTripCombinational) {
    syn::module_builder m("rt");
    const syn::bus a = m.input_bus("a", 4);
    const syn::bus b = m.input_bus("b", 4);
    m.output_bus("s", m.add(a, b).sum);
    m.output("lt", m.ult(a, b));
    const netlist n = m.build();

    const netlist back = from_blif_string(to_blif(n));
    expect_equivalent(n, back, 64, 5);
}

TEST(Blif, RoundTripSequential) {
    syn::module_builder m("seq");
    const syn::expr_id en = m.input("en");
    const syn::bus q = m.new_register("q", 5, 9);
    m.connect_register(q, m.mux2(en, m.inc(q), q));
    m.output_bus("q", q);
    m.output("top", m.eq_const(q, 31));
    const netlist n = m.build();

    const netlist back = from_blif_string(to_blif(n));
    ASSERT_EQ(back.dffs().size(), 5u);
    expect_equivalent(n, back, 80, 17);
}

TEST(Blif, RoundTripBenchmark) {
    const netlist n = bench::build_benchmark("b03");
    const netlist back = from_blif_string(to_blif(n, "b03"));
    expect_equivalent(n, back, 60, 23);
}

TEST(Blif, ParsesOffSetCover) {
    // NOR expressed through its OFF-set: output 0 when any input is 1.
    const netlist n = from_blif_string(
        ".model offset\n"
        ".inputs a b\n"
        ".outputs y\n"
        ".names a b y\n"
        "1- 0\n"
        "-1 0\n"
        ".end\n");
    sync_simulator s(n);
    EXPECT_EQ(s.cycle({false, false}), std::vector<bool>{true});
    EXPECT_EQ(s.cycle({true, false}), std::vector<bool>{false});
    EXPECT_EQ(s.cycle({false, true}), std::vector<bool>{false});
    EXPECT_EQ(s.cycle({true, true}), std::vector<bool>{false});
}

TEST(Blif, ParsesConstantsAndComments) {
    const netlist n = from_blif_string(
        "# a constant-one and a constant-zero\n"
        ".model konst\n"
        ".inputs a\n"
        ".outputs one zero\n"
        ".names one   # ON row follows\n"
        "1\n"
        ".names zero\n"
        ".end\n");
    sync_simulator s(n);
    const auto out = s.cycle({false});
    EXPECT_TRUE(out[0]);
    EXPECT_FALSE(out[1]);
}

TEST(Blif, ParsesLatchInitialValue) {
    const netlist n = from_blif_string(
        ".model l\n"
        ".inputs d\n"
        ".outputs q\n"
        ".latch d q re clk 1\n"
        ".end\n");
    ASSERT_EQ(n.dffs().size(), 1u);
    sync_simulator s(n);
    EXPECT_EQ(s.cycle({false}), std::vector<bool>{true});   // init 1
    EXPECT_EQ(s.cycle({false}), std::vector<bool>{false});  // latched d
}

TEST(Blif, OutOfOrderNamesBlocksResolve) {
    const netlist n = from_blif_string(
        ".model ooo\n"
        ".inputs a b\n"
        ".outputs y\n"
        ".names t1 t2 y\n"
        "11 1\n"
        ".names a b t1\n"
        "11 1\n"
        ".names a b t2\n"
        "1- 1\n"
        "-1 1\n"
        ".end\n");
    sync_simulator s(n);
    EXPECT_EQ(s.cycle({true, true}), std::vector<bool>{true});
    EXPECT_EQ(s.cycle({true, false}), std::vector<bool>{false});
}

TEST(Blif, ContinuationLines) {
    const netlist n = from_blif_string(
        ".model cont\n"
        ".inputs \\\na b\n"
        ".outputs y\n"
        ".names a b y\n"
        "11 1\n"
        ".end\n");
    EXPECT_EQ(n.inputs().size(), 2u);
}

TEST(Blif, DiagnosticsCarryLineNumbers) {
    EXPECT_THROW(from_blif_string("no model here\n"), std::runtime_error);
    EXPECT_THROW(from_blif_string(".model m\n.inputs a\n.outputs y\n"
                                  ".names a y\n11 1\n.end\n"),
                 std::runtime_error);  // row width mismatch
    EXPECT_THROW(from_blif_string(".model m\n.inputs a\n.outputs y\n.end\n"),
                 std::runtime_error);  // undriven output
    EXPECT_THROW(from_blif_string(".model m\n.inputs a\n.outputs y\n"
                                  ".names x y\n1 1\n"
                                  ".names y x\n1 1\n.end\n"),
                 std::runtime_error);  // combinational cycle
}

TEST(Blif, RoundTripThroughPlFlowStillMatchesGolden) {
    // The imported netlist must survive the whole PL+EE pipeline.
    const netlist original = bench::build_benchmark("b08");
    const netlist imported = from_blif_string(to_blif(original, "b08"));
    // measure_average_delay cross-checks against the golden model per wave.
    const auto mapped = pl::map_to_phased_logic(imported);
    sim::measure_options opts;
    opts.num_vectors = 30;
    const auto r = sim::measure_average_delay(mapped.pl, &imported, opts);
    EXPECT_EQ(r.mismatched_waves, 0u);
}

}  // namespace
}  // namespace plee::nl
