// Tests for the synthetic workload generator: seed determinism (the same
// parameters must produce byte-identical netlists), structural validity of
// every scenario preset, and end-to-end compatibility with the full
// synth -> PL-map -> EE -> simulate pipeline.

#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "netlist/blif.hpp"
#include "report/experiment.hpp"

namespace plee::wl {
namespace {

TEST(Workload, SameSeedIsByteIdentical) {
    for (scenario s : all_scenarios()) {
        const workload_params params = scenario_params(s, 120, 42);
        const std::string a = nl::to_blif(generate(params), "w");
        const std::string b = nl::to_blif(generate(params), "w");
        EXPECT_EQ(a, b) << to_string(s);
    }
}

TEST(Workload, SameSeedIsByteIdenticalAcrossThreads) {
    // Generation is pure: concurrent generators with the same seed agree
    // with a reference produced on the main thread.
    const workload_params params = scenario_params(scenario::datapath_like, 150, 7);
    const std::string reference = nl::to_blif(generate(params), "w");
    constexpr unsigned k_threads = 4;
    std::vector<std::string> produced(k_threads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < k_threads; ++t) {
        pool.emplace_back(
            [&, t] { produced[t] = nl::to_blif(generate(params), "w"); });
    }
    for (std::thread& t : pool) t.join();
    for (const std::string& blif : produced) EXPECT_EQ(blif, reference);
}

TEST(Workload, DifferentSeedsDiffer) {
    workload_params a = scenario_params(scenario::random_dag, 100, 1);
    workload_params b = a;
    b.seed = 2;
    EXPECT_NE(nl::to_blif(generate(a), "w"), nl::to_blif(generate(b), "w"));
}

TEST(Workload, PresetsProduceValidStructure) {
    for (scenario s : all_scenarios()) {
        for (std::size_t gates : {30u, 200u}) {
            const workload_params params = scenario_params(s, gates, 11);
            const nl::netlist netlist = generate(params);  // generate() validates
            EXPECT_EQ(netlist.num_luts(), gates) << to_string(s);
            EXPECT_TRUE(netlist.respects_fanin_limit(params.max_arity))
                << to_string(s);
            EXPECT_EQ(netlist.inputs().size(), params.num_inputs) << to_string(s);
            const std::size_t expect_latches = static_cast<std::size_t>(
                params.latch_fraction * static_cast<double>(gates) + 0.5);
            EXPECT_EQ(netlist.dffs().size(), expect_latches) << to_string(s);
            // The sink pass guarantees every non-output cell is consumed.
            std::vector<bool> consumed(netlist.num_cells(), false);
            for (const nl::cell& c : netlist.cells()) {
                for (nl::cell_id f : c.fanins) consumed[f] = true;
            }
            for (nl::cell_id id = 0; id < netlist.num_cells(); ++id) {
                if (netlist.at(id).kind != nl::cell_kind::output) {
                    EXPECT_TRUE(consumed[id]) << to_string(s) << " cell " << id;
                }
            }
        }
    }
}

TEST(Workload, RejectsUnsatisfiableParams) {
    workload_params p;
    p.num_gates = 0;
    EXPECT_THROW(generate(p), std::invalid_argument);
    p = workload_params{};
    p.num_inputs = 1;
    EXPECT_THROW(generate(p), std::invalid_argument);
    p = workload_params{};
    p.max_arity = 9;  // beyond the 8-variable truth-table space
    EXPECT_THROW(generate(p), std::invalid_argument);
    p = workload_params{};
    p.arity_weights = {0, 0, 0, 0};
    EXPECT_THROW(generate(p), std::invalid_argument);
    EXPECT_THROW(scenario_from_string("no-such-scenario"), std::invalid_argument);
}

TEST(Workload, RunsThroughTheFullPipeline) {
    // The strongest validity statement: every scenario maps to a live/safe
    // PL netlist whose simulated outputs match the synchronous golden model
    // wave-for-wave, with and without EE (run_ee_experiment throws on any
    // divergence or marked-graph violation).
    for (scenario s : all_scenarios()) {
        const workload_params params = scenario_params(s, 60, 3);
        report::experiment_options opts;
        opts.measure.num_vectors = 10;
        const report::experiment_row row =
            report::run_ee_experiment(params.name, generate(params), opts);
        EXPECT_GT(row.pl_gates, 0u) << to_string(s);
        EXPECT_GT(row.delay_no_ee, 0.0) << to_string(s);
    }
}

TEST(Workload, ArithmeticScenariosOfferTriggers) {
    // Datapath-shaped workloads are built from carry/mux/xor classes — the
    // EE transform must find implementable triggers on them.
    const workload_params params = scenario_params(scenario::datapath_like, 150, 9);
    report::experiment_options opts;
    opts.measure.num_vectors = 5;
    const report::experiment_row row =
        report::run_ee_experiment(params.name, generate(params), opts);
    EXPECT_GT(row.ee_gates, 0u);
}

}  // namespace
}  // namespace plee::wl
