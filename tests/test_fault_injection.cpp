// Tests for the deterministic fault-injection harness and the fleet
// runner's recovery paths driven through it: spec parsing, stateless
// decision determinism, thread-count-invariant fleet outcomes under
// injection, deadline-driven cancellation, and retry with backoff.

#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "report/experiment.hpp"
#include "rt/errors.hpp"
#include "runner/runner.hpp"
#include "workload/workload.hpp"

namespace plee {
namespace {

/// The injector is process-wide state; every test leaves it disarmed so the
/// rest of the suite runs on the inert fast path.
class FaultInjection : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().clear(); }
};

report::experiment_options tiny_options() {
    report::experiment_options opts;
    opts.measure.num_vectors = 4;
    return opts;
}

runner::fleet_job tiny_job(const std::string& id, std::uint64_t seed) {
    runner::fleet_job job;
    job.id = id;
    job.description = id;
    job.netlist =
        wl::generate(wl::scenario_params(wl::scenario::random_dag, 30, seed));
    return job;
}

/// Replays the runner's per-attempt decision through the real check API:
/// does `synth.map` fire for (job, attempt) under the current arming?
bool map_attempt_fails(const std::string& id, unsigned attempt) {
    fault::injector::scope scope(
        fault::injector::hash(id + "#" + std::to_string(attempt)));
    try {
        fault::injector::instance().check("synth.map", 0);
        fault::injector::instance().check("synth.map", 1);
        return false;
    } catch (const fault::injected_fault&) {
        return true;
    }
}

TEST_F(FaultInjection, InertWhenUnconfigured) {
    fault::injector& inj = fault::injector::instance();
    inj.clear();
    EXPECT_FALSE(inj.enabled());
    EXPECT_NO_THROW(inj.check("sim.fire", 0));
    EXPECT_NO_THROW(inj.check("cache.lookup", 12345));
}

TEST_F(FaultInjection, SpecParsing) {
    fault::injector& inj = fault::injector::instance();
    inj.configure("seed=42;ee.search=0.5;sim.fire=1:delay=5");
    EXPECT_TRUE(inj.enabled());

    // Unknown points, malformed entries and out-of-range probabilities are
    // rejected...
    EXPECT_THROW(inj.configure("bogus.point=1"), std::invalid_argument);
    EXPECT_THROW(inj.configure("ee.search"), std::invalid_argument);
    EXPECT_THROW(inj.configure("ee.search=1.5"), std::invalid_argument);
    EXPECT_THROW(inj.configure("ee.search=x"), std::invalid_argument);
    EXPECT_THROW(inj.configure("ee.search=1:frobnicate"),
                 std::invalid_argument);
    EXPECT_THROW(inj.configure("sim.fire=1:delay=-2"), std::invalid_argument);
    // ...and a malformed tail arms nothing: the previous config survives.
    EXPECT_THROW(inj.configure("ee.search=1;bogus.point=1"),
                 std::invalid_argument);
    EXPECT_TRUE(inj.enabled());

    EXPECT_THROW(inj.arm("bogus.point", {}), std::invalid_argument);

    inj.configure("");
    EXPECT_FALSE(inj.enabled());
}

TEST_F(FaultInjection, SnapshotPointsAndTornFateParse) {
    fault::injector& inj = fault::injector::instance();
    EXPECT_TRUE(fault::injector::known_point("cache.save"));
    EXPECT_TRUE(fault::injector::known_point("cache.load"));

    inj.configure("seed=3;cache.save=1:torn;cache.load=0.5:torn");
    EXPECT_TRUE(inj.enabled());
    // Torn is a data fate, not a failure fate: the check API never throws
    // for a torn-armed point.
    EXPECT_NO_THROW(inj.check("cache.save", 0));
    EXPECT_NO_THROW(inj.check("cache.load", 0));

    // Throwing fates on the snapshot points still work.
    inj.configure("seed=3;cache.save=1:permanent");
    EXPECT_THROW(inj.check("cache.save", 0), fault::injected_fault);
}

TEST_F(FaultInjection, TornOffsetIsSeededDeterministicAndBounded) {
    fault::injector& inj = fault::injector::instance();

    // Unarmed (or armed without :torn): every byte is kept.
    EXPECT_EQ(inj.torn_offset("cache.save", 1, 1000), 1000u);
    inj.configure("seed=5;cache.save=1:permanent");
    EXPECT_EQ(inj.torn_offset("cache.save", 1, 1000), 1000u);

    inj.configure("seed=5;cache.save=1:torn");
    const std::size_t a = inj.torn_offset("cache.save", 1, 1000);
    EXPECT_LT(a, 1000u);
    EXPECT_EQ(inj.torn_offset("cache.save", 1, 1000), a);  // stateless
    // Different sites and seeds land elsewhere (deterministically).
    const std::size_t b = inj.torn_offset("cache.save", 2, 1000);
    inj.configure("seed=6;cache.save=1:torn");
    const std::size_t c = inj.torn_offset("cache.save", 1, 1000);
    EXPECT_TRUE(a != b || a != c);
}

TEST_F(FaultInjection, DecisionsAreStatelessScopedAndSeeded) {
    fault::injector& inj = fault::injector::instance();
    inj.configure("seed=1;synth.map=0.5:permanent");

    // Certainty at the extremes.
    fault::point_config always;
    always.probability = 1.0;
    inj.arm("ee.search", always);
    EXPECT_THROW(inj.check("ee.search", 7), fault::injected_fault);
    fault::point_config never;
    never.probability = 0.0;
    inj.arm("ee.search", never);
    EXPECT_NO_THROW(inj.check("ee.search", 7));

    // p = 0.5 decisions are a pure function of (seed, point, scope, site):
    // the same sweep replays identically, and a different scope or seed
    // produces a different (still deterministic) pattern.
    const auto sweep = [&]() {
        std::vector<bool> fired;
        for (std::uint64_t site = 0; site < 64; ++site) {
            try {
                inj.check("synth.map", site);
                fired.push_back(false);
            } catch (const fault::injected_fault& e) {
                EXPECT_EQ(e.point(), "synth.map");
                EXPECT_EQ(e.classify(), failure_class::permanent);
                fired.push_back(true);
            }
        }
        return fired;
    };
    const std::vector<bool> base = sweep();
    EXPECT_NE(std::count(base.begin(), base.end(), true), 0);
    EXPECT_NE(std::count(base.begin(), base.end(), false), 0);
    EXPECT_EQ(sweep(), base);

    {
        fault::injector::scope scope(fault::injector::hash("job#1"));
        const std::vector<bool> scoped = sweep();
        EXPECT_NE(scoped, base);
        EXPECT_EQ(sweep(), scoped);
    }
    // Scope restored on destruction.
    EXPECT_EQ(sweep(), base);

    inj.set_seed(2);
    EXPECT_NE(sweep(), base);
}

TEST_F(FaultInjection, BackoffIsDeterministicAndExponential) {
    const double base_ms = 5.0;
    for (unsigned attempt = 1; attempt <= 6; ++attempt) {
        const double b = runner::retry_backoff_ms("b05", attempt, base_ms);
        EXPECT_EQ(b, runner::retry_backoff_ms("b05", attempt, base_ms));
        const double expo = base_ms * static_cast<double>(1u << (attempt - 1));
        EXPECT_GE(b, expo);
        EXPECT_LT(b, expo + base_ms);  // jitter in [0, base)
    }
    // Decorrelated across jobs: the jitter differs.
    EXPECT_NE(runner::retry_backoff_ms("b05", 1, base_ms),
              runner::retry_backoff_ms("b07", 1, base_ms));
    EXPECT_EQ(runner::retry_backoff_ms("b05", 1, 0.0), 0.0);
}

// Acceptance (a): arm a permanent fault at p = 0.4; which k of the N jobs
// fail is a deterministic property of the spec, not of scheduling — every
// thread count yields the same k failures, and the survivors' rows are
// bit-identical to a clean serial pipeline (a non-firing check has no
// effect on results).
TEST_F(FaultInjection, FleetOutcomesUnderInjectionAreThreadCountInvariant) {
    std::vector<runner::fleet_job> jobs;
    std::vector<report::experiment_row> clean;
    for (std::uint64_t i = 0; i < 6; ++i) {
        jobs.push_back(tiny_job("w" + std::to_string(i), 100 + i));
        clean.push_back(report::run_ee_experiment(
            jobs.back().id, jobs.back().netlist, tiny_options()));
    }

    fault::injector::instance().configure("seed=9;synth.map=0.4:permanent");
    std::vector<runner::job_status> statuses;
    for (unsigned threads : {1u, 2u, 5u}) {
        runner::fleet_options opts;
        opts.num_threads = threads;
        opts.experiment = tiny_options();
        const runner::fleet_result fleet = runner::run_fleet(jobs, opts);
        ASSERT_EQ(fleet.results.size(), jobs.size());
        if (threads == 1) {
            for (const runner::job_result& r : fleet.results) {
                statuses.push_back(r.status);
            }
            // The seed must exercise both paths for the test to mean much.
            ASSERT_GT(fleet.jobs_failed, 0u);
            ASSERT_GT(fleet.jobs_ok, 0u);
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const runner::job_result& r = fleet.results[i];
            EXPECT_EQ(r.status, statuses[i])
                << jobs[i].id << " threads=" << threads;
            if (r.status == runner::job_status::ok) {
                EXPECT_EQ(r.row.pl_gates, clean[i].pl_gates) << jobs[i].id;
                EXPECT_EQ(r.row.ee_gates, clean[i].ee_gates) << jobs[i].id;
                EXPECT_EQ(r.row.delay_no_ee, clean[i].delay_no_ee)
                    << jobs[i].id;
                EXPECT_EQ(r.row.delay_ee, clean[i].delay_ee) << jobs[i].id;
            } else {
                EXPECT_NE(r.error.find("injected fault at synth.map"),
                          std::string::npos)
                    << r.error;
                EXPECT_EQ(r.attempts, 1u);  // permanent: no retry
            }
        }
    }
}

// Acceptance (b): a job made pathologically slow by delay injection lands in
// timed_out, and the cooperative cancellation bounds its wall time to well
// under twice the deadline.
TEST_F(FaultInjection, DeadlineCancelsSlowJobWithinTwiceTheDeadline) {
    // Every cancel-check interval sleeps 5 ms, so the measurement alone
    // wants several times the deadline — expiry is guaranteed mid-measure,
    // far from any completes-just-in-time knife edge.
    const double deadline_ms = 150.0;
    fault::injector::instance().configure("sim.fire=1:delay=5");

    runner::fleet_job slow = tiny_job("slow", 8);
    slow.netlist =
        wl::generate(wl::scenario_params(wl::scenario::datapath_like, 150, 8));

    runner::fleet_options opts;
    opts.num_threads = 1;
    opts.experiment = tiny_options();
    opts.experiment.measure.num_vectors = 50;
    opts.job_deadline_ms = deadline_ms;
    const runner::fleet_result fleet = runner::run_fleet({slow}, opts);

    ASSERT_EQ(fleet.results.size(), 1u);
    const runner::job_result& timed = fleet.results[0];
    EXPECT_EQ(timed.status, runner::job_status::timed_out);
    EXPECT_NE(timed.error.find("deadline exceeded"), std::string::npos)
        << timed.error;
    EXPECT_EQ(timed.attempts, 1u);  // timeouts never retry
    EXPECT_LT(timed.wall_ms, 2.0 * deadline_ms);
    EXPECT_EQ(fleet.jobs_timed_out, 1u);
}

// Acceptance (c): a transient fault that fires on attempt 1 but not on
// attempt 2 (per-attempt scopes are part of the decision) is healed by the
// retry loop: the job lands in retried_ok with attempts > 1 and a clean row.
TEST_F(FaultInjection, TransientFaultIsHealedByRetry) {
    fault::injector::instance().configure("seed=5;synth.map=0.5:transient");

    // Find a job id whose deterministic fate is fail-then-succeed, through
    // the same check API the pipeline uses.
    std::string victim;
    for (int i = 0; i < 64 && victim.empty(); ++i) {
        const std::string id = "r" + std::to_string(i);
        if (map_attempt_fails(id, 1) && !map_attempt_fails(id, 2)) victim = id;
    }
    ASSERT_FALSE(victim.empty())
        << "no fail-then-succeed id in 64 candidates at this seed";

    const runner::fleet_job job = tiny_job(victim, 3);
    const report::experiment_row clean = [&] {
        fault::injector::instance().clear();
        const report::experiment_row row =
            report::run_ee_experiment(victim, job.netlist, tiny_options());
        fault::injector::instance().configure(
            "seed=5;synth.map=0.5:transient");
        return row;
    }();

    runner::fleet_options opts;
    opts.num_threads = 1;
    opts.experiment = tiny_options();
    opts.retry_backoff_base_ms = 0.5;  // keep the test fast

    // Without retries the transient failure is terminal...
    const runner::fleet_result no_retry = runner::run_fleet({job}, opts);
    EXPECT_EQ(no_retry.results[0].status, runner::job_status::failed);
    EXPECT_EQ(no_retry.results[0].attempts, 1u);

    // ...with retries the second attempt lands, and the row matches the
    // never-faulted pipeline exactly.
    opts.max_retries = 2;
    const runner::fleet_result fleet = runner::run_fleet({job}, opts);
    const runner::job_result& r = fleet.results[0];
    EXPECT_EQ(r.status, runner::job_status::retried_ok);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_TRUE(r.error.empty());
    EXPECT_EQ(fleet.jobs_ok, 1u);
    EXPECT_EQ(fleet.jobs_retried, 1u);
    EXPECT_EQ(r.row.pl_gates, clean.pl_gates);
    EXPECT_EQ(r.row.ee_gates, clean.ee_gates);
    EXPECT_EQ(r.row.delay_ee, clean.delay_ee);

    // And the whole episode is reproducible.
    const runner::fleet_result replay = runner::run_fleet({job}, opts);
    EXPECT_EQ(replay.results[0].status, runner::job_status::retried_ok);
    EXPECT_EQ(replay.results[0].attempts, 2u);
}

}  // namespace
}  // namespace plee
