// Exhaustive equivalence of the word-parallel trigger kernels against the
// retained scalar reference implementations: every LUT4 master (all 2^16
// functions) under every candidate support set, for both the exact and the
// cube-list derivations, plus the coverage counter.  This is the ground
// truth that lets the hot path stay branch-free word ops.

#include <gtest/gtest.h>

#include <bit>

#include "bool/cube_list.hpp"
#include "bool/support.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {
namespace {

TEST(WordParallel, ExactTriggerMatchesScalarOnAllLut4Masters) {
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
            const bf::truth_table word = exact_trigger_function(master, s);
            const bf::truth_table ref = scalar::exact_trigger_function(master, s);
            ASSERT_EQ(word, ref) << "master=" << f << " support=" << s;
        }
    }
}

TEST(WordParallel, CoveredMintermsMatchesScalarOnAllLut4Masters) {
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
            const bf::truth_table trig = exact_trigger_function(master, s);
            ASSERT_EQ(covered_minterms(master, s, trig),
                      scalar::covered_minterms(master, s, trig))
                << "master=" << f << " support=" << s;
        }
    }
}

TEST(WordParallel, CubeListTriggerMatchesScalarOnAllLut4Masters) {
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        const bf::on_off_cover cover = bf::make_on_off_cover(master);
        for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
            const bf::truth_table word = cube_list_trigger_function(master, cover, s);
            const bf::truth_table ref =
                scalar::cube_list_trigger_function(master, cover, s);
            ASSERT_EQ(word, ref) << "master=" << f << " support=" << s;
        }
    }
}

TEST(WordParallel, CanonicalCacheMatchesDirectOnAllLut4Masters) {
    // The P-canonical cache must be transparent for every function, and the
    // 2^16 functions must collapse to their 3984 permutation classes.  (The
    // NPN default is cross-checked the same way in test_trigger_cache_npn.)
    trigger_cache cache(canon_mode::p);
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
            const bf::truth_table direct = exact_trigger_function(master, s);
            const bf::truth_table cached = cache.exact(master, s);
            ASSERT_EQ(direct, cached) << "master=" << f << " support=" << s;
        }
    }
    EXPECT_EQ(cache.canonicalized_masters(), 65536u);
    EXPECT_EQ(cache.size(), 3984u * 14u);  // permutation classes x support sets
    EXPECT_GT(cache.hits(), cache.misses());
}

TEST(WordParallel, FullSearchMatchesScalarKernels) {
    // The whole driver — candidate list, coverage, Equation 1, best pick —
    // must agree between kernel families on a large random master stream.
    std::uint64_t state = 2026;
    search_options word_opts;
    search_options scalar_opts;
    scalar_opts.use_scalar_kernels = true;
    for (int trial = 0; trial < 2000; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::truth_table master(4, state & 0xffff);
        if (master.support_size() < 2) continue;
        const std::vector<int> arrivals = {3, 1, 2, 0};
        const search_result w = find_best_trigger(master, arrivals, word_opts);
        const search_result s = find_best_trigger(master, arrivals, scalar_opts);
        ASSERT_EQ(w.all.size(), s.all.size());
        for (std::size_t i = 0; i < w.all.size(); ++i) {
            ASSERT_EQ(w.all[i].support, s.all[i].support);
            ASSERT_EQ(w.all[i].function, s.all[i].function);
            ASSERT_EQ(w.all[i].covered_minterms, s.all[i].covered_minterms);
            ASSERT_EQ(w.all[i].cost, s.all[i].cost);
        }
        ASSERT_EQ(w.best.has_value(), s.best.has_value());
        if (w.best) {
            ASSERT_EQ(w.best->support, s.best->support);
            ASSERT_EQ(w.best->function, s.best->function);
        }
    }
}

TEST(WordParallel, FiveAndSixVariableMastersMatchScalar) {
    // The kernels are generic over the 6-variable space, not just LUT4.
    std::uint64_t state = 77;
    for (int trial = 0; trial < 300; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        for (int n = 5; n <= 6; ++n) {
            const std::uint64_t mask =
                n == 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (1u << n)) - 1);
            const bf::truth_table master(n, state & mask);
            const std::uint32_t pins = (1u << n) - 1;
            for (std::uint32_t s : bf::cached_support_subsets(pins, n - 1)) {
                const bf::truth_table word = exact_trigger_function(master, s);
                ASSERT_EQ(word, scalar::exact_trigger_function(master, s))
                    << "n=" << n << " support=" << s;
                ASSERT_EQ(covered_minterms(master, s, word),
                          scalar::covered_minterms(master, s, word));
            }
        }
    }
}

}  // namespace
}  // namespace plee::ee
