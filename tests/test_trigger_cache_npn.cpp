// Tests for the NPN extension of the canonical trigger cache: the
// negate_inputs word kernel, NPN invariance of the canonical form, the
// class-count collapse (2^16 LUT4 functions -> 3984 P classes -> 222 NPN
// classes), the full-space cross-check of the NPN cache against the P-only
// cache, and the thread-safety of the shared concurrent cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "bool/support.hpp"
#include "ee/concurrent_cache.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {
namespace {

std::uint64_t lcg(std::uint64_t& state) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
}

TEST(NegateInputs, MatchesPerMintermDefinition) {
    std::uint64_t state = 5;
    for (int trial = 0; trial < 200; ++trial) {
        const int n = 1 + static_cast<int>(lcg(state) % 6);
        const std::uint64_t full =
            n == 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (1u << n)) - 1);
        const bf::truth_table f(n, lcg(state) & full);
        const std::uint32_t mask =
            static_cast<std::uint32_t>(lcg(state)) & ((1u << n) - 1);
        const bf::truth_table g = f.negate_inputs(mask);
        for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
            ASSERT_EQ(g.eval(m), f.eval(m ^ mask));
        }
    }
    EXPECT_THROW(bf::truth_table(2, 0x6).negate_inputs(0x4), std::invalid_argument);
}

TEST(NpnCanonicalize, InvariantUnderNpnTransforms) {
    // Applying any permutation, input negation and output complement to a
    // function must not change its NPN-canonical bits, and the recorded
    // transform must reproduce them.
    std::uint64_t state = 17;
    for (int trial = 0; trial < 40; ++trial) {
        const bf::truth_table f(4, lcg(state) & 0xffff);
        const trigger_cache::canonical_form canon = trigger_cache::npn_canonicalize(f);

        // The witness transform: input negation, then permutation, then
        // output complement, lands exactly on the canonical bits.
        std::vector<int> witness(4);
        for (int v = 0; v < 4; ++v) witness[static_cast<std::size_t>(v)] = canon.perm[v];
        bf::truth_table w = f.negate_inputs(canon.input_neg).permute(witness);
        if (canon.output_neg) w = ~w;
        ASSERT_EQ(w.words(), canon.bits);

        for (int variant = 0; variant < 20; ++variant) {
            std::vector<int> perm = {0, 1, 2, 3};
            for (int i = 3; i > 0; --i) {
                std::swap(perm[static_cast<std::size_t>(i)],
                          perm[lcg(state) % static_cast<std::uint64_t>(i + 1)]);
            }
            const std::uint32_t neg = static_cast<std::uint32_t>(lcg(state)) & 0xf;
            bf::truth_table g = f.negate_inputs(neg).permute(perm);
            if (lcg(state) & 1u) g = ~g;
            ASSERT_EQ(trigger_cache::npn_canonicalize(g).bits, canon.bits);
        }
    }
}

TEST(NpnCanonicalize, ClassCountsOverTheFullLut4Space) {
    // The counts the whole scheme rests on: 2^16 functions collapse to 3984
    // permutation classes and 222 NPN classes.
    std::set<bf::tt_words> p_classes;
    std::set<bf::tt_words> npn_classes;
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table t(4, f);
        p_classes.insert(trigger_cache::canonicalize(t).bits);
        npn_classes.insert(trigger_cache::npn_canonicalize(t).bits);
    }
    EXPECT_EQ(p_classes.size(), 3984u);
    EXPECT_EQ(npn_classes.size(), 222u);
}

TEST(NpnCache, MatchesPOnlyCacheOnAllLut4Masters) {
    // The satellite cross-check: every master function of the LUT4 space,
    // every support set, NPN-cached == P-cached (the P cache is itself
    // cross-checked against the uncached kernels in test_trigger_cache).
    trigger_cache npn(canon_mode::npn);
    trigger_cache p(canon_mode::p);
    const std::vector<std::uint32_t>& supports = bf::cached_support_subsets(0xf, 3);
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        for (std::uint32_t s : supports) {
            ASSERT_EQ(npn.exact(master, s), p.exact(master, s))
                << "master 0x" << std::hex << f << " support 0x" << s;
        }
    }
    // The NPN memo is the smaller one — that is the point of the extension.
    EXPECT_LT(npn.size(), p.size());
    EXPECT_LT(npn.misses(), p.misses());
    EXPECT_GT(npn.hits(), p.hits());
}

TEST(NpnCache, NegatedMastersShareCacheEntries) {
    // Sweeping a master and then any input/output negation of it must add
    // no new canonical triggers: the second sweep is all hits.
    trigger_cache cache;
    const bf::truth_table f(4, 0x1ee8);
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) cache.exact(f, s);
    const std::size_t entries = cache.size();
    const std::uint64_t misses = cache.misses();

    const bf::truth_table g = ~f.negate_inputs(0b1010);
    std::vector<bf::truth_table> via_cache;
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        via_cache.push_back(cache.exact(g, s));
    }
    EXPECT_EQ(cache.size(), entries);
    EXPECT_EQ(cache.misses(), misses);

    std::size_t i = 0;
    for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
        EXPECT_EQ(via_cache[i++], exact_trigger_function(g, s));
    }
}

TEST(NpnCache, MergeFromRejectsModeMismatch) {
    trigger_cache npn(canon_mode::npn);
    trigger_cache p(canon_mode::p);
    EXPECT_THROW(npn.merge_from(p), std::logic_error);
}

TEST(ConcurrentCache, MatchesUncachedUnderThreadContention) {
    // Hammer one shared cache from several threads over a master pool with
    // heavy overlap; every answer must equal the uncached kernel and the
    // counters must add up to exactly one lookup per (thread, master,
    // support).
    concurrent_trigger_cache cache;
    std::vector<bf::truth_table> masters;
    std::uint64_t state = 99;
    for (int i = 0; i < 64; ++i) masters.emplace_back(4, lcg(state) & 0xffff);
    const std::vector<std::uint32_t>& supports = bf::cached_support_subsets(0xf, 3);

    constexpr unsigned k_threads = 4;
    std::vector<int> failures(k_threads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < k_threads; ++t) {
        pool.emplace_back([&, t] {
            for (const bf::truth_table& m : masters) {
                for (std::uint32_t s : supports) {
                    if (cache.exact(m, s) != exact_trigger_function(m, s)) {
                        ++failures[t];
                    }
                }
            }
        });
    }
    for (std::thread& t : pool) t.join();
    for (int f : failures) EXPECT_EQ(f, 0);
    EXPECT_EQ(cache.hits() + cache.misses(),
              k_threads * masters.size() * supports.size());
    // All canonical work was deduplicated across threads: at most one miss
    // per canonical (class, support) pair.
    EXPECT_EQ(cache.misses(), cache.size());
}

}  // namespace
}  // namespace plee::ee
