// Tests for the 64-lane word-parallel simulation mode: the sync golden
// model's lane kernel, the PL event engine's run_lanes (lockstep, divergence
// splits, stats accounting, heap fallback), the lane-packed stimulus, and
// the lanes=64 measurement path.  The contract under test everywhere: lane L
// is bit-identical to a scalar/serial run of lane L's vector alone.

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"
#include "sim/pl_sim.hpp"
#include "sim/stimulus.hpp"
#include "workload/workload.hpp"

namespace plee::sim {
namespace {

struct built_circuit {
    nl::netlist sync;
    pl::pl_netlist pl;
};

built_circuit build_preset(wl::scenario kind, std::size_t gates,
                           std::uint64_t seed, bool with_ee) {
    built_circuit c;
    c.sync = wl::generate(wl::scenario_params(kind, gates, seed));
    pl::map_result mapped = pl::map_to_phased_logic(c.sync);
    if (with_ee) ee::apply_early_evaluation(mapped.pl);
    c.pl = std::move(mapped.pl);
    return c;
}

built_circuit build_bench(const std::string& id, bool with_ee) {
    built_circuit c;
    c.sync = bench::build_benchmark(id);
    pl::map_result mapped = pl::map_to_phased_logic(c.sync);
    if (with_ee) ee::apply_early_evaluation(mapped.pl);
    c.pl = std::move(mapped.pl);
    return c;
}

/// The shared oracle: run_lanes over every block must reproduce, lane for
/// lane, a serial single-vector run — sink values, input/output stable
/// times — and the summed EE counters of the lane runs must equal the
/// summed counters of the serial runs.
void expect_lanes_match_serial(const pl::pl_netlist& plnl, std::uint64_t seed,
                               std::size_t count, sim_options opts = {},
                               std::uint64_t* splits_out = nullptr) {
    const std::vector<stimulus_block> blocks =
        make_stimulus(count, plnl.sources().size(), seed);
    pl_simulator lane_sim(plnl, opts);
    pl_simulator ref(plnl, opts);
    sim_run_stats lane_total{};
    sim_run_stats ref_total{};
    std::vector<std::vector<bool>> one(1);
    for (const stimulus_block& block : blocks) {
        const lane_block_result lr = lane_sim.run_lanes(block);
        ASSERT_EQ(lr.num_vectors, block.num_vectors);
        const sim_run_stats& ls = lane_sim.stats();
        EXPECT_EQ(ls.lane_blocks, 1u);
        EXPECT_EQ(ls.lane_vectors, block.num_vectors);
        EXPECT_GE(ls.lane_runs, 1u);
        lane_total.ee_hits += ls.ee_hits;
        lane_total.ee_misses += ls.ee_misses;
        lane_total.ee_wins += ls.ee_wins;
        lane_total.lane_splits += ls.lane_splits;
        for (std::size_t lane = 0; lane < block.num_vectors; ++lane) {
            block.extract(lane, one[0]);
            const std::vector<wave_record> waves = ref.run(one);
            ASSERT_EQ(waves.size(), 1u);
            const sim_run_stats& rs = ref.stats();
            ref_total.ee_hits += rs.ee_hits;
            ref_total.ee_misses += rs.ee_misses;
            ref_total.ee_wins += rs.ee_wins;
            const wave_record& w = waves.front();
            EXPECT_DOUBLE_EQ(lr.input_stable[lane], w.input_stable)
                << "lane " << lane;
            EXPECT_DOUBLE_EQ(lr.output_stable[lane], w.output_stable)
                << "lane " << lane;
            ASSERT_EQ(lr.outputs.size(), w.outputs.size());
            for (std::size_t j = 0; j < w.outputs.size(); ++j) {
                EXPECT_EQ(((lr.outputs[j] >> lane) & 1u) != 0, w.outputs[j])
                    << "lane " << lane << " sink " << j;
            }
        }
    }
    EXPECT_EQ(lane_total.ee_hits, ref_total.ee_hits);
    EXPECT_EQ(lane_total.ee_misses, ref_total.ee_misses);
    EXPECT_EQ(lane_total.ee_wins, ref_total.ee_wins);
    if (splits_out != nullptr) *splits_out = lane_total.lane_splits;
}

// --- Stimulus ------------------------------------------------------------

TEST(LaneStimulus, PackedBlocksMatchRandomVectors) {
    const std::size_t count = 150;  // 2 full blocks + a partial one
    const std::size_t width = 11;
    const std::uint64_t seed = 42;
    const std::vector<stimulus_block> blocks = make_stimulus(count, width, seed);
    const std::vector<std::vector<bool>> vectors =
        random_vectors(count, width, seed);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].num_vectors, 64u);
    EXPECT_EQ(blocks[1].num_vectors, 64u);
    EXPECT_EQ(blocks[2].num_vectors, 22u);
    EXPECT_EQ(blocks[2].lane_mask(), (std::uint64_t{1} << 22) - 1);
    std::vector<bool> out;
    for (std::size_t v = 0; v < count; ++v) {
        const stimulus_block& b = blocks[v / k_lanes];
        for (std::size_t i = 0; i < width; ++i) {
            EXPECT_EQ(b.bit(v % k_lanes, i), vectors[v][i]);
        }
        b.extract(v % k_lanes, out);
        EXPECT_EQ(out, vectors[v]);
    }
}

// --- Synchronous golden model -------------------------------------------

TEST(SyncLanes, MatchesScalarOverMultiCycleTrajectories) {
    // Latch-heavy preset: the DFF state words must track 64 independent
    // per-lane trajectories across clock edges, not just one eval.
    const built_circuit c =
        build_preset(wl::scenario::control_fsm, 80, 7, false);
    const std::size_t num_inputs = c.sync.inputs().size();
    const std::size_t num_outputs = c.sync.outputs().size();
    const std::size_t cycles = 8;

    std::mt19937_64 rng(99);
    std::vector<std::vector<std::uint64_t>> stimulus(cycles);
    for (auto& words : stimulus) {
        words.resize(num_inputs);
        for (std::uint64_t& w : words) w = rng();
    }

    nl::sync_lane_simulator lanes(c.sync);
    lanes.reset();
    std::vector<std::vector<std::uint64_t>> lane_outputs(cycles);
    for (std::size_t k = 0; k < cycles; ++k) {
        lanes.set_inputs(stimulus[k].data(), num_inputs);
        lanes.eval();
        lane_outputs[k].resize(num_outputs);
        lanes.output_values(lane_outputs[k].data());
        lanes.latch();
    }

    for (std::size_t lane = 0; lane < k_lanes; ++lane) {
        nl::sync_simulator scalar(c.sync);
        scalar.reset();
        std::vector<bool> inputs(num_inputs);
        for (std::size_t k = 0; k < cycles; ++k) {
            for (std::size_t i = 0; i < num_inputs; ++i) {
                inputs[i] = (stimulus[k][i] >> lane) & 1u;
            }
            scalar.set_inputs(inputs);
            scalar.eval();
            const std::vector<bool> outs = scalar.output_values();
            for (std::size_t j = 0; j < num_outputs; ++j) {
                ASSERT_EQ(((lane_outputs[k][j] >> lane) & 1u) != 0, outs[j])
                    << "cycle " << k << " lane " << lane << " output " << j;
            }
            scalar.latch();
        }
    }
}

// --- PL event engine: run_lanes vs serial --------------------------------

TEST(LaneSim, MatchesSerialAcrossWorkloadPresets) {
    for (const wl::scenario kind : wl::all_scenarios()) {
        SCOPED_TRACE(wl::to_string(kind));
        for (const bool with_ee : {false, true}) {
            SCOPED_TRACE(with_ee ? "ee" : "plain");
            const built_circuit c = build_preset(kind, 80, 5, with_ee);
            expect_lanes_match_serial(c.pl, /*seed=*/0xfeedu + with_ee,
                                      /*count=*/64);
        }
    }
}

TEST(LaneSim, MatchesSerialOnItc99) {
    for (const char* id : {"b01", "b02", "b03", "b04", "b05", "b06", "b07",
                           "b08", "b09", "b10"}) {
        SCOPED_TRACE(id);
        for (const bool with_ee : {false, true}) {
            SCOPED_TRACE(with_ee ? "ee" : "plain");
            const built_circuit c = build_bench(id, with_ee);
            expect_lanes_match_serial(c.pl, /*seed=*/0xb10cu, /*count=*/64);
        }
    }
}

TEST(LaneSim, PartialBlockAndMultiBlockCounts) {
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 60, 3, true);
    // 100 vectors = one full block + a 36-lane partial block.
    expect_lanes_match_serial(c.pl, /*seed=*/17, /*count=*/100);
}

TEST(LaneSim, DivergenceSplitsStayBitIdentical) {
    // A tie-heavy delay model (every component delay equal) maximizes
    // simultaneous efire/normal arrivals; with EE applied the 64 lanes must
    // actually exercise the split-and-defer path, not pure lockstep.
    sim_options opts;
    opts.delays.d_celem = 1.0;
    opts.delays.d_lut = 1.0;
    opts.delays.d_latch = 1.0;
    opts.delays.d_ee_penalty = 1.0;
    opts.delays.d_source = 1.0;
    std::uint64_t splits = 0;
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 120, 11, true);
    expect_lanes_match_serial(c.pl, /*seed=*/23, /*count=*/64, opts, &splits);
    EXPECT_GT(splits, 0u);
}

TEST(LaneSim, PureLockstepWithoutEarlyEvaluation) {
    // No EE masters -> no divergence source: one pass serves all 64 lanes.
    const built_circuit c =
        build_preset(wl::scenario::random_dag, 80, 9, false);
    const std::vector<stimulus_block> blocks =
        make_stimulus(64, c.pl.sources().size(), 31);
    pl_simulator simulator(c.pl);
    simulator.run_lanes(blocks.front());
    EXPECT_EQ(simulator.stats().lane_runs, 1u);
    EXPECT_EQ(simulator.stats().lane_splits, 0u);
}

TEST(LaneSim, HeapEngineFallsBackToSerialAndMatchesCalendar) {
    const built_circuit c =
        build_preset(wl::scenario::control_fsm, 60, 13, true);
    const std::vector<stimulus_block> blocks =
        make_stimulus(40, c.pl.sources().size(), 77);
    sim_options heap_opts;
    heap_opts.queue = queue_kind::binary_heap;
    pl_simulator heap_sim(c.pl, heap_opts);
    pl_simulator cal_sim(c.pl);
    const lane_block_result h = heap_sim.run_lanes(blocks.front());
    const lane_block_result k = cal_sim.run_lanes(blocks.front());
    ASSERT_EQ(h.num_vectors, k.num_vectors);
    EXPECT_EQ(h.outputs, k.outputs);
    for (std::size_t lane = 0; lane < h.num_vectors; ++lane) {
        EXPECT_DOUBLE_EQ(h.input_stable[lane], k.input_stable[lane]);
        EXPECT_DOUBLE_EQ(h.output_stable[lane], k.output_stable[lane]);
    }
    // The fallback is 40 scalar runs; the per-lane EE semantics still agree.
    EXPECT_EQ(heap_sim.stats().lane_runs, 40u);
    EXPECT_EQ(heap_sim.stats().lane_vectors, 40u);
    EXPECT_EQ(heap_sim.stats().ee_hits, cal_sim.stats().ee_hits);
    EXPECT_EQ(heap_sim.stats().ee_misses, cal_sim.stats().ee_misses);
    EXPECT_EQ(heap_sim.stats().ee_wins, cal_sim.stats().ee_wins);
}

TEST(LaneSim, RejectsBadArguments) {
    const built_circuit c =
        build_preset(wl::scenario::random_dag, 40, 19, false);
    const std::size_t width = c.pl.sources().size();

    sim_options trace_opts;
    trace_opts.collect_trace = true;
    pl_simulator tracing(c.pl, trace_opts);
    const std::vector<stimulus_block> ok = make_stimulus(8, width, 1);
    EXPECT_THROW(tracing.run_lanes(ok.front()), std::invalid_argument);

    pl_simulator simulator(c.pl);
    const std::vector<stimulus_block> narrow = make_stimulus(8, width + 1, 1);
    EXPECT_THROW(simulator.run_lanes(narrow.front()), std::invalid_argument);

    stimulus_block empty;
    empty.width = width;
    empty.num_vectors = 0;
    empty.words.assign(width, 0);
    EXPECT_THROW(simulator.run_lanes(empty), std::invalid_argument);
}

// --- Measurement path ----------------------------------------------------

TEST(LaneMeasure, MatchesSerialPerVectorReference) {
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 80, 21, true);
    measure_options opts;
    opts.num_vectors = 100;
    opts.seed = 4242;
    opts.lanes = k_lanes;
    const measure_result r = measure_average_delay(c.pl, &c.sync, opts);
    EXPECT_EQ(r.lanes, k_lanes);
    EXPECT_EQ(r.mismatched_waves, 0u);
    ASSERT_EQ(r.delays.size(), 100u);
    EXPECT_GE(r.lockstep_fraction, 0.0);
    EXPECT_LE(r.lockstep_fraction, 1.0);

    // Every reported delay must equal a fresh serial single-vector run.
    const std::vector<std::vector<bool>> vectors =
        random_vectors(100, c.pl.sources().size(), opts.seed);
    pl_simulator ref(c.pl);
    for (std::size_t v = 0; v < vectors.size(); ++v) {
        const std::vector<wave_record> waves = ref.run({vectors[v]});
        EXPECT_DOUBLE_EQ(r.delays[v], waves.front().delay()) << "vector " << v;
    }
}

TEST(LaneMeasure, RejectsUnsupportedLaneCounts) {
    const built_circuit c =
        build_preset(wl::scenario::random_dag, 40, 25, false);
    measure_options opts;
    opts.lanes = 8;
    EXPECT_THROW(measure_average_delay(c.pl, &c.sync, opts),
                 std::invalid_argument);
}

}  // namespace
}  // namespace plee::sim
