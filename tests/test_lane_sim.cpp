// Tests for the 64-lane word-parallel simulation mode: the sync golden
// model's lane kernel, the PL event engine's run_lanes (lockstep, divergence
// splits, stats accounting, heap fallback), the lane-packed stimulus, and
// the lanes=64 measurement path.  The contract under test everywhere: lane L
// is bit-identical to a scalar/serial run of lane L's vector alone.

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/errors.hpp"
#include "sim/measure.hpp"
#include "sim/pl_sim.hpp"
#include "sim/stimulus.hpp"
#include "workload/workload.hpp"

namespace plee::sim {
namespace {

struct built_circuit {
    nl::netlist sync;
    pl::pl_netlist pl;
};

built_circuit build_preset(wl::scenario kind, std::size_t gates,
                           std::uint64_t seed, bool with_ee) {
    built_circuit c;
    c.sync = wl::generate(wl::scenario_params(kind, gates, seed));
    pl::map_result mapped = pl::map_to_phased_logic(c.sync);
    if (with_ee) ee::apply_early_evaluation(mapped.pl);
    c.pl = std::move(mapped.pl);
    return c;
}

built_circuit build_bench(const std::string& id, bool with_ee) {
    built_circuit c;
    c.sync = bench::build_benchmark(id);
    pl::map_result mapped = pl::map_to_phased_logic(c.sync);
    if (with_ee) ee::apply_early_evaluation(mapped.pl);
    c.pl = std::move(mapped.pl);
    return c;
}

/// The shared oracle: run_lanes over every block must reproduce, lane for
/// lane, a serial single-vector run — sink values, input/output stable
/// times — and the summed EE counters of the lane runs must equal the
/// summed counters of the serial runs.
void expect_lanes_match_serial(const pl::pl_netlist& plnl, std::uint64_t seed,
                               std::size_t count, sim_options opts = {},
                               std::uint64_t* splits_out = nullptr) {
    const std::vector<stimulus_block> blocks =
        make_stimulus(count, plnl.sources().size(), seed);
    pl_simulator lane_sim(plnl, opts);
    pl_simulator ref(plnl, opts);
    sim_run_stats lane_total{};
    sim_run_stats ref_total{};
    std::vector<std::vector<bool>> one(1);
    for (const stimulus_block& block : blocks) {
        const lane_block_result lr = lane_sim.run_lanes(block);
        ASSERT_EQ(lr.num_vectors, block.num_vectors);
        const sim_run_stats& ls = lane_sim.stats();
        EXPECT_EQ(ls.lane_blocks, 1u);
        EXPECT_EQ(ls.lane_vectors, block.num_vectors);
        EXPECT_GE(ls.lane_runs, 1u);
        lane_total.ee_hits += ls.ee_hits;
        lane_total.ee_misses += ls.ee_misses;
        lane_total.ee_wins += ls.ee_wins;
        lane_total.lane_splits += ls.lane_splits;
        for (std::size_t lane = 0; lane < block.num_vectors; ++lane) {
            block.extract(lane, one[0]);
            const std::vector<wave_record> waves = ref.run(one);
            ASSERT_EQ(waves.size(), 1u);
            const sim_run_stats& rs = ref.stats();
            ref_total.ee_hits += rs.ee_hits;
            ref_total.ee_misses += rs.ee_misses;
            ref_total.ee_wins += rs.ee_wins;
            const wave_record& w = waves.front();
            EXPECT_DOUBLE_EQ(lr.input_stable[lane], w.input_stable)
                << "lane " << lane;
            EXPECT_DOUBLE_EQ(lr.output_stable[lane], w.output_stable)
                << "lane " << lane;
            EXPECT_DOUBLE_EQ(lr.delay(lane), w.delay()) << "lane " << lane;
            ASSERT_EQ(lr.outputs.size(), w.outputs.size());
            for (std::size_t j = 0; j < w.outputs.size(); ++j) {
                EXPECT_EQ(((lr.outputs[j] >> lane) & 1u) != 0, w.outputs[j])
                    << "lane " << lane << " sink " << j;
            }
        }
    }
    EXPECT_EQ(lane_total.ee_hits, ref_total.ee_hits);
    EXPECT_EQ(lane_total.ee_misses, ref_total.ee_misses);
    EXPECT_EQ(lane_total.ee_wins, ref_total.ee_wins);
    if (splits_out != nullptr) *splits_out = lane_total.lane_splits;
}

// --- Stimulus ------------------------------------------------------------

TEST(LaneStimulus, PackedBlocksMatchRandomVectors) {
    const std::size_t count = 150;  // 2 full blocks + a partial one
    const std::size_t width = 11;
    const std::uint64_t seed = 42;
    const std::vector<stimulus_block> blocks = make_stimulus(count, width, seed);
    const std::vector<std::vector<bool>> vectors =
        random_vectors(count, width, seed);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].num_vectors, 64u);
    EXPECT_EQ(blocks[1].num_vectors, 64u);
    EXPECT_EQ(blocks[2].num_vectors, 22u);
    EXPECT_EQ(blocks[2].lane_mask(), (std::uint64_t{1} << 22) - 1);
    std::vector<bool> out;
    for (std::size_t v = 0; v < count; ++v) {
        const stimulus_block& b = blocks[v / k_lanes];
        for (std::size_t i = 0; i < width; ++i) {
            EXPECT_EQ(b.bit(v % k_lanes, i), vectors[v][i]);
        }
        b.extract(v % k_lanes, out);
        EXPECT_EQ(out, vectors[v]);
    }
}

// --- Synchronous golden model -------------------------------------------

TEST(SyncLanes, MatchesScalarOverMultiCycleTrajectories) {
    // Latch-heavy preset: the DFF state words must track 64 independent
    // per-lane trajectories across clock edges, not just one eval.
    const built_circuit c =
        build_preset(wl::scenario::control_fsm, 80, 7, false);
    const std::size_t num_inputs = c.sync.inputs().size();
    const std::size_t num_outputs = c.sync.outputs().size();
    const std::size_t cycles = 8;

    std::mt19937_64 rng(99);
    std::vector<std::vector<std::uint64_t>> stimulus(cycles);
    for (auto& words : stimulus) {
        words.resize(num_inputs);
        for (std::uint64_t& w : words) w = rng();
    }

    nl::sync_lane_simulator lanes(c.sync);
    lanes.reset();
    std::vector<std::vector<std::uint64_t>> lane_outputs(cycles);
    for (std::size_t k = 0; k < cycles; ++k) {
        lanes.set_inputs(stimulus[k].data(), num_inputs);
        lanes.eval();
        lane_outputs[k].resize(num_outputs);
        lanes.output_values(lane_outputs[k].data());
        lanes.latch();
    }

    for (std::size_t lane = 0; lane < k_lanes; ++lane) {
        nl::sync_simulator scalar(c.sync);
        scalar.reset();
        std::vector<bool> inputs(num_inputs);
        for (std::size_t k = 0; k < cycles; ++k) {
            for (std::size_t i = 0; i < num_inputs; ++i) {
                inputs[i] = (stimulus[k][i] >> lane) & 1u;
            }
            scalar.set_inputs(inputs);
            scalar.eval();
            const std::vector<bool> outs = scalar.output_values();
            for (std::size_t j = 0; j < num_outputs; ++j) {
                ASSERT_EQ(((lane_outputs[k][j] >> lane) & 1u) != 0, outs[j])
                    << "cycle " << k << " lane " << lane << " output " << j;
            }
            scalar.latch();
        }
    }
}

// --- PL event engine: run_lanes vs serial --------------------------------

TEST(LaneSim, MatchesSerialAcrossWorkloadPresets) {
    for (const wl::scenario kind : wl::all_scenarios()) {
        SCOPED_TRACE(wl::to_string(kind));
        for (const bool with_ee : {false, true}) {
            SCOPED_TRACE(with_ee ? "ee" : "plain");
            const built_circuit c = build_preset(kind, 80, 5, with_ee);
            expect_lanes_match_serial(c.pl, /*seed=*/0xfeedu + with_ee,
                                      /*count=*/64);
        }
    }
}

TEST(LaneSim, MatchesSerialOnItc99) {
    for (const char* id : {"b01", "b02", "b03", "b04", "b05", "b06", "b07",
                           "b08", "b09", "b10"}) {
        SCOPED_TRACE(id);
        for (const bool with_ee : {false, true}) {
            SCOPED_TRACE(with_ee ? "ee" : "plain");
            const built_circuit c = build_bench(id, with_ee);
            expect_lanes_match_serial(c.pl, /*seed=*/0xb10cu, /*count=*/64);
        }
    }
}

TEST(LaneSim, PartialBlockAndMultiBlockCounts) {
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 60, 3, true);
    // 100 vectors = one full block + a 36-lane partial block.
    expect_lanes_match_serial(c.pl, /*seed=*/17, /*count=*/100);
}

/// Every component delay equal: maximizes simultaneous efire/normal
/// arrivals, the adversarial tie case for divergence handling.
sim_options tie_delay_options() {
    sim_options opts;
    opts.delays.d_celem = 1.0;
    opts.delays.d_lut = 1.0;
    opts.delays.d_latch = 1.0;
    opts.delays.d_ee_penalty = 1.0;
    opts.delays.d_source = 1.0;
    return opts;
}

TEST(LaneSim, DivergenceSplitsStayBitIdentical) {
    // Under the default (vector) policy a divergent efire word widens the
    // emission to per-lane times instead of splitting; with tie delays and
    // EE applied the 64 lanes must actually exercise that path.
    sim_options opts = tie_delay_options();
    std::uint64_t splits = 0;
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 120, 11, true);
    expect_lanes_match_serial(c.pl, /*seed=*/23, /*count=*/64, opts, &splits);
    EXPECT_GT(splits, 0u);
}

TEST(LaneSim, VectorPolicyNeverForksOrReplays) {
    // The vector default runs exactly one pass per block: divergence is
    // absorbed by the per-lane time slab, never by forking or replaying.
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 120, 11, true);
    const std::vector<stimulus_block> blocks =
        make_stimulus(64, c.pl.sources().size(), 23);
    pl_simulator simulator(c.pl, tie_delay_options());
    simulator.run_lanes(blocks.front());
    const sim_run_stats& s = simulator.stats();
    EXPECT_GT(s.lane_splits, 0u);  // divergence genuinely happened...
    EXPECT_EQ(s.lane_runs, 1u);    // ...yet one pass served all 64 lanes
    EXPECT_EQ(s.lane_forks, 0u);
    EXPECT_EQ(s.lane_replays, 0u);
    EXPECT_EQ(s.lane_fork_bytes_peak, 0u);
}

// --- Satellite regressions: lane accounting ------------------------------

TEST(LaneSim, DelaySubtractsRecordedReleaseTime) {
    // delay(lane) must mirror wave_record::delay() — stable output minus
    // the recorded release — not assume a zero release epoch.
    lane_block_result r;
    r.num_vectors = 2;
    r.output_stable[0] = 7.5;
    r.release[0] = 2.5;
    r.output_stable[1] = 4.0;
    r.release[1] = 0.0;
    EXPECT_DOUBLE_EQ(r.delay(0), 5.0);
    EXPECT_DOUBLE_EQ(r.delay(1), 4.0);
}

TEST(LaneSim, EeCountersAreOrderIndependentOnSequentialCircuits) {
    // Regression: EE hit/miss counters used to depend on how far the
    // post-completion drain raced ahead of the last sink record, so a lane
    // pass could not reproduce summed serial counters on feedback-heavy
    // circuits.  With firings capped at the wave horizon, every engine
    // counts each EE master exactly once per wave.
    const built_circuit c = build_bench("b04", true);
    std::size_t masters = 0;
    for (pl::gate_id g = 0; g < c.pl.num_gates(); ++g) {
        if (c.pl.gate(g).efire_in != pl::k_invalid_edge) ++masters;
    }
    ASSERT_GT(masters, 0u);
    const std::size_t n = 5;
    const std::vector<std::vector<bool>> vectors =
        random_vectors(n, c.pl.sources().size(), 7);
    pl_simulator cal(c.pl);
    cal.run(vectors);
    EXPECT_EQ(cal.stats().ee_hits + cal.stats().ee_misses, masters * n);
    sim_options heap_opts;
    heap_opts.queue = queue_kind::binary_heap;
    pl_simulator heap(c.pl, heap_opts);
    heap.run(vectors);
    EXPECT_EQ(heap.stats().ee_hits, cal.stats().ee_hits);
    EXPECT_EQ(heap.stats().ee_misses, cal.stats().ee_misses);
    EXPECT_EQ(heap.stats().ee_wins, cal.stats().ee_wins);
}

TEST(LaneSim, HeapFallbackCommitsStatsBeforeBudgetThrow) {
    // Regression: the scalar heap fallback used to lose the completed
    // per-vector runs' stats when a later vector blew the event budget —
    // the totals must be committed before the exception propagates.
    const built_circuit c =
        build_preset(wl::scenario::control_fsm, 60, 13, true);
    const std::vector<stimulus_block> blocks =
        make_stimulus(40, c.pl.sources().size(), 77);

    // Probe one lane's serial event count.  With firings capped at the wave
    // horizon every single-vector run of a circuit pops the same number of
    // events, so the per-run budget trips at a known point.
    sim_options probe_opts;
    probe_opts.queue = queue_kind::binary_heap;
    pl_simulator probe(c.pl, probe_opts);
    std::vector<std::vector<bool>> one(1);
    blocks.front().extract(0, one.front());
    probe.run(one);
    const std::uint64_t per_run = probe.stats().events;
    ASSERT_GT(per_run, 1u);

    sim_options tight = probe_opts;
    tight.max_events = per_run - 1;
    pl_simulator simulator(c.pl, tight);
    EXPECT_THROW(simulator.run_lanes(blocks.front()), budget_exhausted);
    // The block totals and the failing run's partial work must both be
    // visible after the throw — the old fallback lost them, leaving the
    // flight recorder's "events before death" column reading zero.
    const sim_run_stats& s = simulator.stats();
    EXPECT_EQ(s.lane_blocks, 1u);
    EXPECT_EQ(s.lane_vectors, blocks.front().num_vectors);
    EXPECT_EQ(s.lane_runs, 0u);  // the throwing run never completed
    EXPECT_EQ(s.events, per_run);  // budget + the offending increment
}

// --- Split-storm suite: the scalar fork/replay machinery -----------------

TEST(LaneSim, SplitStormForkStaysBitIdentical) {
    // Explicit fork policy under adversarial tie delays: every divergent
    // word checkpoints the minority and resumes it mid-stream, and the
    // result must still match 64 serial runs bit for bit.
    sim_options opts = tie_delay_options();
    opts.lane_policy = lane_split_policy::fork;
    opts.lane_group = false;
    std::uint64_t splits = 0;
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 150, 29, true);
    expect_lanes_match_serial(c.pl, /*seed=*/41, /*count=*/64, opts, &splits);
    EXPECT_GT(splits, 0u);
}

TEST(LaneSim, SplitStormForkAccounting) {
    // Fork must beat replay on from-t0 runs, stay within its byte budget,
    // and agree with the vector default on every per-lane result.
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 150, 29, true);
    const std::vector<stimulus_block> blocks =
        make_stimulus(64, c.pl.sources().size(), 41);

    sim_options fork_opts = tie_delay_options();
    fork_opts.lane_policy = lane_split_policy::fork;
    fork_opts.lane_group = false;
    sim_options replay_opts = tie_delay_options();
    replay_opts.lane_policy = lane_split_policy::replay;
    replay_opts.lane_group = false;
    sim_options vec_opts = tie_delay_options();

    pl_simulator fork_sim(c.pl, fork_opts);
    pl_simulator replay_sim(c.pl, replay_opts);
    pl_simulator vec_sim(c.pl, vec_opts);
    const lane_block_result fr = fork_sim.run_lanes(blocks.front());
    const lane_block_result rr = replay_sim.run_lanes(blocks.front());
    const lane_block_result vr = vec_sim.run_lanes(blocks.front());
    const sim_run_stats& fs = fork_sim.stats();
    const sim_run_stats& rs = replay_sim.stats();

    EXPECT_GT(fs.lane_splits, 0u);
    EXPECT_GT(fs.lane_forks, 0u);
    EXPECT_GT(fs.lane_fork_depth_max, 0u);
    EXPECT_LT(fs.lane_runs, rs.lane_runs);  // resumes replace from-t0 runs
    EXPECT_LE(fs.lane_fork_bytes_peak, fork_opts.lane_fork_budget_bytes);

    EXPECT_EQ(fr.outputs, rr.outputs);
    EXPECT_EQ(fr.outputs, vr.outputs);
    for (std::size_t lane = 0; lane < fr.num_vectors; ++lane) {
        EXPECT_DOUBLE_EQ(fr.output_stable[lane], rr.output_stable[lane]);
        EXPECT_DOUBLE_EQ(fr.output_stable[lane], vr.output_stable[lane]);
        EXPECT_DOUBLE_EQ(fr.delay(lane), vr.delay(lane));
    }
    EXPECT_EQ(fs.ee_hits, rs.ee_hits);
    EXPECT_EQ(fs.ee_misses, rs.ee_misses);
    EXPECT_EQ(fs.ee_wins, rs.ee_wins);
    EXPECT_EQ(fs.ee_hits, vec_sim.stats().ee_hits);
    EXPECT_EQ(fs.ee_misses, vec_sim.stats().ee_misses);
    EXPECT_EQ(fs.ee_wins, vec_sim.stats().ee_wins);
}

TEST(LaneSim, ForkBudgetOverflowDegradesToReplay) {
    // A fork budget too small for any checkpoint forces every minority
    // branch back to a from-t0 replay — slower, but still bit-identical.
    sim_options opts = tie_delay_options();
    opts.lane_policy = lane_split_policy::fork;
    opts.lane_group = false;
    opts.lane_fork_budget_bytes = 1;
    std::uint64_t splits = 0;
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 120, 11, true);
    expect_lanes_match_serial(c.pl, /*seed=*/23, /*count=*/64, opts, &splits);
    EXPECT_GT(splits, 0u);

    const std::vector<stimulus_block> blocks =
        make_stimulus(64, c.pl.sources().size(), 23);
    pl_simulator simulator(c.pl, opts);
    simulator.run_lanes(blocks.front());
    EXPECT_GT(simulator.stats().lane_replays, 0u);
    EXPECT_EQ(simulator.stats().lane_forks, 0u);
}

TEST(LaneSim, PureLockstepWithoutEarlyEvaluation) {
    // No EE masters -> no divergence source: one pass serves all 64 lanes.
    const built_circuit c =
        build_preset(wl::scenario::random_dag, 80, 9, false);
    const std::vector<stimulus_block> blocks =
        make_stimulus(64, c.pl.sources().size(), 31);
    pl_simulator simulator(c.pl);
    simulator.run_lanes(blocks.front());
    EXPECT_EQ(simulator.stats().lane_runs, 1u);
    EXPECT_EQ(simulator.stats().lane_splits, 0u);
}

TEST(LaneSim, HeapEngineFallsBackToSerialAndMatchesCalendar) {
    const built_circuit c =
        build_preset(wl::scenario::control_fsm, 60, 13, true);
    const std::vector<stimulus_block> blocks =
        make_stimulus(40, c.pl.sources().size(), 77);
    sim_options heap_opts;
    heap_opts.queue = queue_kind::binary_heap;
    pl_simulator heap_sim(c.pl, heap_opts);
    pl_simulator cal_sim(c.pl);
    const lane_block_result h = heap_sim.run_lanes(blocks.front());
    const lane_block_result k = cal_sim.run_lanes(blocks.front());
    ASSERT_EQ(h.num_vectors, k.num_vectors);
    EXPECT_EQ(h.outputs, k.outputs);
    for (std::size_t lane = 0; lane < h.num_vectors; ++lane) {
        EXPECT_DOUBLE_EQ(h.input_stable[lane], k.input_stable[lane]);
        EXPECT_DOUBLE_EQ(h.output_stable[lane], k.output_stable[lane]);
    }
    // The fallback is 40 scalar runs; the per-lane EE semantics still agree.
    EXPECT_EQ(heap_sim.stats().lane_runs, 40u);
    EXPECT_EQ(heap_sim.stats().lane_vectors, 40u);
    EXPECT_EQ(heap_sim.stats().ee_hits, cal_sim.stats().ee_hits);
    EXPECT_EQ(heap_sim.stats().ee_misses, cal_sim.stats().ee_misses);
    EXPECT_EQ(heap_sim.stats().ee_wins, cal_sim.stats().ee_wins);
}

TEST(LaneSim, RejectsBadArguments) {
    const built_circuit c =
        build_preset(wl::scenario::random_dag, 40, 19, false);
    const std::size_t width = c.pl.sources().size();

    sim_options trace_opts;
    trace_opts.collect_trace = true;
    pl_simulator tracing(c.pl, trace_opts);
    const std::vector<stimulus_block> ok = make_stimulus(8, width, 1);
    EXPECT_THROW(tracing.run_lanes(ok.front()), std::invalid_argument);

    pl_simulator simulator(c.pl);
    const std::vector<stimulus_block> narrow = make_stimulus(8, width + 1, 1);
    EXPECT_THROW(simulator.run_lanes(narrow.front()), std::invalid_argument);

    stimulus_block empty;
    empty.width = width;
    empty.num_vectors = 0;
    empty.words.assign(width, 0);
    EXPECT_THROW(simulator.run_lanes(empty), std::invalid_argument);
}

// --- Measurement path ----------------------------------------------------

TEST(LaneMeasure, MatchesSerialPerVectorReference) {
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 80, 21, true);
    measure_options opts;
    opts.num_vectors = 100;
    opts.seed = 4242;
    opts.lanes = k_lanes;
    const measure_result r = measure_average_delay(c.pl, &c.sync, opts);
    EXPECT_EQ(r.lanes, k_lanes);
    EXPECT_EQ(r.mismatched_waves, 0u);
    ASSERT_EQ(r.delays.size(), 100u);
    EXPECT_GE(r.lockstep_fraction, 0.0);
    EXPECT_LE(r.lockstep_fraction, 1.0);

    // Every reported delay must equal a fresh serial single-vector run.
    const std::vector<std::vector<bool>> vectors =
        random_vectors(100, c.pl.sources().size(), opts.seed);
    pl_simulator ref(c.pl);
    for (std::size_t v = 0; v < vectors.size(); ++v) {
        const std::vector<wave_record> waves = ref.run({vectors[v]});
        EXPECT_DOUBLE_EQ(r.delays[v], waves.front().delay()) << "vector " << v;
    }
}

TEST(LaneMeasure, LockstepFractionCountsForkPasses) {
    // With the fork policy under tie delays the passes genuinely split, so
    // lockstep must land strictly below 1.0, and the per-depth checkpoint
    // histogram must account for every fork the engine reported.
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 120, 11, true);
    measure_options mo;
    mo.num_vectors = 128;
    mo.seed = 23;
    mo.lanes = k_lanes;
    mo.sim = tie_delay_options();
    mo.sim.lane_policy = lane_split_policy::fork;
    mo.sim.lane_group = false;
    const measure_result r = measure_average_delay(c.pl, &c.sync, mo);
    EXPECT_GT(r.stats.lane_splits, 0u);
    EXPECT_GE(r.lockstep_fraction, 0.0);
    EXPECT_LT(r.lockstep_fraction, 1.0);
    std::uint64_t depth_sum = 0;
    for (const std::uint64_t n : r.fork_depth_counts) depth_sum += n;
    EXPECT_EQ(depth_sum, r.stats.lane_forks);
}

TEST(LaneMeasure, SingleVectorBlocksDoNotFakeLockstep) {
    // Regression: a trailing 1-vector block can neither merge nor split, so
    // it must contribute to neither side of the lockstep ratio — the old
    // per-block vectors==runs shortcut let degenerate blocks drag a
    // splitting workload toward a fake "fully lockstep" reading.
    const built_circuit c =
        build_preset(wl::scenario::datapath_like, 120, 11, true);
    measure_options mo;
    mo.seed = 23;
    mo.lanes = k_lanes;
    mo.sim = tie_delay_options();
    mo.sim.lane_policy = lane_split_policy::fork;
    mo.sim.lane_group = false;
    mo.num_vectors = 64;
    const measure_result full = measure_average_delay(c.pl, &c.sync, mo);
    ASSERT_GT(full.stats.lane_splits, 0u);
    ASSERT_LT(full.lockstep_fraction, 1.0);
    mo.num_vectors = 65;  // same full block plus a degenerate 1-vector block
    const measure_result padded = measure_average_delay(c.pl, &c.sync, mo);
    EXPECT_DOUBLE_EQ(padded.lockstep_fraction, full.lockstep_fraction);

    // A genuinely divergence-free workload still reads exactly 1.0.
    measure_options lone;
    lone.num_vectors = 1;
    lone.seed = 23;
    lone.lanes = k_lanes;
    const measure_result single = measure_average_delay(c.pl, &c.sync, lone);
    EXPECT_DOUBLE_EQ(single.lockstep_fraction, 1.0);
}

TEST(LaneMeasure, RejectsUnsupportedLaneCounts) {
    const built_circuit c =
        build_preset(wl::scenario::random_dag, 40, 25, false);
    measure_options opts;
    opts.lanes = 8;
    EXPECT_THROW(measure_average_delay(c.pl, &c.sync, opts),
                 std::invalid_argument);
}

}  // namespace
}  // namespace plee::sim
