// Tests for FSM synthesis: encoded state registers, prioritized guarded
// transitions and Moore outputs, validated against a C++ reference walk.

#include "synth/fsm.hpp"

#include <gtest/gtest.h>

#include "netlist/sync_sim.hpp"

namespace plee::syn {
namespace {

TEST(Fsm, TwoStateToggle) {
    module_builder m("toggle");
    auto& a = m.arena();
    const expr_id tick = m.input("tick");
    fsm_builder fsm(m, "t", 2, 0);
    fsm.transition(0, tick, 1);
    fsm.transition(1, tick, 0);
    m.output("in1", fsm.in_state(1));
    fsm.finalize();
    (void)a;
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{false});
    EXPECT_EQ(sim.cycle({false}), std::vector<bool>{true});  // holds without tick
    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{true});
    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{false});
}

TEST(Fsm, PriorityFirstDeclaredWins) {
    // From state 0: guard A (to 1) is declared before guard B (to 2); when
    // both hold, A must win — mirroring a VHDL if/elsif chain.
    module_builder m("prio");
    const expr_id ga = m.input("ga");
    const expr_id gb = m.input("gb");
    fsm_builder fsm(m, "p", 3, 0);
    fsm.transition(0, ga, 1);
    fsm.transition(0, gb, 2);
    m.output("s1", fsm.in_state(1));
    m.output("s2", fsm.in_state(2));
    fsm.finalize();
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    sim.cycle({true, true});  // both guards: go to 1
    const std::vector<bool> out = sim.cycle({false, false});
    EXPECT_TRUE(out[0]);
    EXPECT_FALSE(out[1]);
}

TEST(Fsm, OtherwiseFallback) {
    module_builder m("fb");
    const expr_id go = m.input("go");
    fsm_builder fsm(m, "f", 3, 0);
    fsm.transition(0, go, 2);
    fsm.otherwise(0, 1);  // without `go`, drift to state 1
    m.output("s1", fsm.in_state(1));
    m.output("s2", fsm.in_state(2));
    fsm.finalize();
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    sim.cycle({false});
    std::vector<bool> out = sim.cycle({false});
    EXPECT_TRUE(out[0]);   // drifted to 1
    EXPECT_FALSE(out[1]);
}

TEST(Fsm, DefaultIsStay) {
    module_builder m("stay");
    const expr_id go = m.input("go");
    fsm_builder fsm(m, "s", 2, 0);
    fsm.transition(0, go, 1);
    m.output("s0", fsm.in_state(0));
    fsm.finalize();
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);
    EXPECT_EQ(sim.cycle({false}), std::vector<bool>{true});
    EXPECT_EQ(sim.cycle({false}), std::vector<bool>{true});  // still 0
}

TEST(Fsm, InitialStateEncoded) {
    module_builder m("init");
    fsm_builder fsm(m, "i", 5, 3);
    m.output("s3", fsm.in_state(3));
    fsm.finalize();
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);
    EXPECT_EQ(sim.cycle({}), std::vector<bool>{true});
}

TEST(Fsm, StateBitsSizedForStateCount) {
    module_builder m("bits");
    fsm_builder f2(m, "a", 2, 0);
    fsm_builder f5(m, "b", 5, 0);
    fsm_builder f8(m, "c", 8, 0);
    EXPECT_EQ(f2.state_bits(), 1);
    EXPECT_EQ(f5.state_bits(), 3);
    EXPECT_EQ(f8.state_bits(), 3);
    f2.finalize();
    f5.finalize();
    f8.finalize();
    m.output("d", m.lit(false));
    EXPECT_NO_THROW(m.build());
}

TEST(Fsm, RangeChecks) {
    module_builder m("rc");
    fsm_builder fsm(m, "r", 3, 0);
    EXPECT_THROW(fsm.transition(3, m.lit(true), 0), std::invalid_argument);
    EXPECT_THROW(fsm.transition(0, m.lit(true), 7), std::invalid_argument);
    EXPECT_THROW(fsm.in_state(-1), std::invalid_argument);
    EXPECT_THROW(fsm.otherwise(9, 0), std::invalid_argument);
    EXPECT_THROW(fsm_builder(m, "bad", 3, 5), std::invalid_argument);
    fsm.finalize();
    EXPECT_THROW(fsm.finalize(), std::logic_error);
    m.output("d", m.lit(false));
    m.build();
}

TEST(Fsm, RandomWalkMatchesReferenceModel) {
    // A 4-state machine exercised with pseudo-random stimulus against a
    // plain-C++ transition table.
    module_builder m("walk");
    auto& a = m.arena();
    const expr_id u = m.input("u");
    const expr_id v = m.input("v");
    fsm_builder fsm(m, "w", 4, 0);
    fsm.transition(0, u, 1);
    fsm.transition(0, v, 3);
    fsm.transition(1, a.and_(u, v), 2);
    fsm.transition(2, a.or_(u, v), 3);
    fsm.transition(3, a.not_(u), 0);
    for (int s = 0; s < 4; ++s) {
        m.output("s" + std::to_string(s), fsm.in_state(s));
    }
    fsm.finalize();
    nl::netlist n = m.build();
    nl::sync_simulator sim(n);

    int state = 0;
    std::uint64_t rng = 42;
    for (int step = 0; step < 200; ++step) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const bool uv = (rng >> 40) & 1u;
        const bool vv = (rng >> 41) & 1u;
        const std::vector<bool> out = sim.cycle({uv, vv});
        for (int s = 0; s < 4; ++s) {
            EXPECT_EQ(out[static_cast<std::size_t>(s)], s == state) << "step " << step;
        }
        // Reference transition (same priority order).
        switch (state) {
            case 0: state = uv ? 1 : (vv ? 3 : 0); break;
            case 1: state = (uv && vv) ? 2 : 1; break;
            case 2: state = (uv || vv) ? 3 : 2; break;
            case 3: state = !uv ? 0 : 3; break;
        }
    }
}

}  // namespace
}  // namespace plee::syn
