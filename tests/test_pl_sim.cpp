// Tests for the event-driven PL simulator: functional equivalence with the
// synchronous golden model, the non-pipelined measurement protocol, EE
// timing behaviour, and the dynamic liveness/safety checking.

#include "sim/pl_sim.hpp"

#include <gtest/gtest.h>

#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/errors.hpp"
#include "sim/measure.hpp"
#include "synth/rtl.hpp"

namespace plee::sim {
namespace {

nl::netlist adder_netlist(int width) {
    syn::module_builder m("adder");
    const syn::bus a = m.input_bus("a", width);
    const syn::bus b = m.input_bus("b", width);
    const auto r = m.add(a, b);
    m.output_bus("sum", r.sum);
    m.output("cout", r.carry);
    return m.build();
}

nl::netlist counter_netlist() {
    syn::module_builder m("cnt");
    const syn::expr_id en = m.input("en");
    const syn::bus q = m.new_register("q", 4, 0);
    m.connect_register(q, m.mux2(en, m.inc(q), q));
    m.output_bus("q", q);
    m.output("wrap", m.eq_const(q, 15));
    return m.build();
}

std::vector<std::vector<bool>> exhaustive_vectors(std::size_t width) {
    std::vector<std::vector<bool>> vs;
    for (std::uint32_t m = 0; m < (1u << width); ++m) {
        std::vector<bool> v;
        for (std::size_t i = 0; i < width; ++i) v.push_back((m >> i) & 1u);
        vs.push_back(std::move(v));
    }
    return vs;
}

TEST(PlSim, CombinationalMatchesGolden) {
    const nl::netlist n = adder_netlist(3);
    const pl::map_result mapped = pl::map_to_phased_logic(n);

    const auto vectors = exhaustive_vectors(6);
    pl_simulator sim(mapped.pl);
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    ASSERT_EQ(waves.size(), vectors.size());
    for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_EQ(waves[w].outputs, gold.cycle(vectors[w])) << "wave " << w;
    }
}

TEST(PlSim, SequentialMatchesGoldenCycleByCycle) {
    const nl::netlist n = counter_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);

    const auto vectors = random_vectors(64, 1, 77);
    pl_simulator sim(mapped.pl);
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_EQ(waves[w].outputs, gold.cycle(vectors[w])) << "wave " << w;
    }
}

TEST(PlSim, DelaysArePositiveAndOrdered) {
    const nl::netlist n = adder_netlist(4);
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    pl_simulator sim(mapped.pl);
    const auto waves = sim.run(random_vectors(20, 8, 5));
    double prev_stable = -1.0;
    for (const wave_record& w : waves) {
        EXPECT_GT(w.delay(), 0.0);
        EXPECT_GT(w.output_stable, prev_stable);  // waves complete in order
        prev_stable = w.output_stable;
    }
}

TEST(PlSim, NonPipelinedReleasesAfterStability) {
    const nl::netlist n = adder_netlist(4);
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    pl_simulator sim(mapped.pl);
    const auto waves = sim.run(random_vectors(10, 8, 9));
    for (std::size_t w = 1; w < waves.size(); ++w) {
        // Vector k+1 is presented only after wave k's outputs stabilized.
        EXPECT_GE(waves[w].input_stable, waves[w - 1].output_stable);
    }
}

TEST(PlSim, PipelinedModeIsFaster) {
    const nl::netlist n = adder_netlist(6);
    const pl::map_result mapped = pl::map_to_phased_logic(n);

    sim_options non_piped;
    non_piped.non_pipelined = true;
    pl_simulator s1(mapped.pl, non_piped);
    const auto w1 = s1.run(random_vectors(50, 12, 3));

    sim_options piped;
    piped.non_pipelined = false;
    pl_simulator s2(mapped.pl, piped);
    const auto w2 = s2.run(random_vectors(50, 12, 3));

    EXPECT_EQ(w1.size(), w2.size());
    for (std::size_t w = 0; w < w1.size(); ++w) {
        EXPECT_EQ(w1[w].outputs, w2[w].outputs);  // same values either way
    }
    // Total makespan shrinks when tokens stream.
    EXPECT_LT(w2.back().output_stable, w1.back().output_stable);
}

TEST(PlSim, EarlyEvaluationPreservesFunction) {
    const nl::netlist n = adder_netlist(6);
    pl::map_result mapped = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(mapped.pl);

    const auto vectors = random_vectors(80, 12, 21);
    pl_simulator sim(mapped.pl);
    const auto waves = sim.run(vectors);

    nl::sync_simulator gold(n);
    for (std::size_t w = 0; w < waves.size(); ++w) {
        EXPECT_EQ(waves[w].outputs, gold.cycle(vectors[w])) << "wave " << w;
    }
    EXPECT_GT(sim.stats().ee_hits + sim.stats().ee_misses, 0u);
}

TEST(PlSim, EarlyEvaluationSpeedsUpAdder) {
    const nl::netlist n = adder_netlist(8);
    pl::map_result base = pl::map_to_phased_logic(n);
    pl::map_result eed = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(eed.pl);

    const auto vectors = random_vectors(100, 16, 1234);
    pl_simulator s_base(base.pl);
    pl_simulator s_ee(eed.pl);
    const auto w_base = s_base.run(vectors);
    const auto w_ee = s_ee.run(vectors);

    double base_total = 0, ee_total = 0;
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        base_total += w_base[w].delay();
        ee_total += w_ee[w].delay();
    }
    EXPECT_LT(ee_total, base_total);  // the paper's core claim, in the small
    EXPECT_GT(s_ee.stats().ee_wins, 0u);
}

TEST(PlSim, EeMissPathPaysPenalty) {
    // Force misses by zeroing both operands of an AND-tree... simplest: an
    // adder driven with propagate-heavy vectors (a = ~b) so carry triggers
    // (generate/kill detectors) miss at every stage.
    const nl::netlist n = adder_netlist(4);
    pl::map_result base = pl::map_to_phased_logic(n);
    pl::map_result eed = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(eed.pl);

    std::vector<std::vector<bool>> vectors;
    for (int k = 0; k < 10; ++k) {
        std::vector<bool> v;
        for (int i = 0; i < 4; ++i) v.push_back((k + i) % 2 == 0);
        for (int i = 0; i < 4; ++i) v.push_back(!v[static_cast<std::size_t>(i)]);
        vectors.push_back(std::move(v));
    }
    pl_simulator s_base(base.pl);
    pl_simulator s_ee(eed.pl);
    const auto w_base = s_base.run(vectors);
    const auto w_ee = s_ee.run(vectors);
    // All-propagate vectors: EE cannot win on the final carry and the extra
    // Muller-C element costs time — the slight degradations of Table 3.
    EXPECT_GE(w_ee.back().delay(), w_base.back().delay());
}

TEST(PlSim, StatsCountFirings) {
    const nl::netlist n = counter_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    pl_simulator sim(mapped.pl);
    sim.run(random_vectors(16, 1, 4));
    // Every compute/through gate fires once per wave (plus env gates).
    EXPECT_GE(sim.stats().firings, 16u * mapped.pl.num_pl_gates());
    EXPECT_GT(sim.stats().events, 0u);
}


TEST(PlSim, RunsAreBitAndTimeDeterministic) {
    // Two simulators over the same netlist and stimulus must agree on every
    // output bit and every timestamp (the event queue is seeded with a
    // deterministic tie-break).
    const nl::netlist n = adder_netlist(5);
    pl::map_result mapped = pl::map_to_phased_logic(n);
    ee::apply_early_evaluation(mapped.pl);
    const auto vectors = random_vectors(40, 10, 77);

    pl_simulator s1(mapped.pl);
    pl_simulator s2(mapped.pl);
    const auto w1 = s1.run(vectors);
    const auto w2 = s2.run(vectors);
    ASSERT_EQ(w1.size(), w2.size());
    for (std::size_t w = 0; w < w1.size(); ++w) {
        EXPECT_EQ(w1[w].outputs, w2[w].outputs);
        EXPECT_DOUBLE_EQ(w1[w].output_stable, w2[w].output_stable);
        EXPECT_DOUBLE_EQ(w1[w].input_stable, w2[w].input_stable);
    }
    EXPECT_EQ(s1.stats().events, s2.stats().events);
    EXPECT_EQ(s1.stats().ee_hits, s2.stats().ee_hits);
}

TEST(PlSim, ReRunningOneSimulatorResets) {
    const nl::netlist n = counter_netlist();
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    const auto vectors = random_vectors(12, 1, 3);
    pl_simulator sim(mapped.pl);
    const auto first = sim.run(vectors);
    const auto second = sim.run(vectors);  // must start from the reset state
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        EXPECT_EQ(first[w].outputs, second[w].outputs) << "wave " << w;
    }
}

TEST(PlSim, VectorWidthChecked) {
    const nl::netlist n = adder_netlist(2);
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    pl_simulator sim(mapped.pl);
    EXPECT_THROW(sim.run({{true}}), std::invalid_argument);
}

TEST(PlSim, DeadlockDetectedOnBrokenMarking) {
    // Hand-build a PL netlist whose compute gate never receives an ack back:
    // source -> compute -> sink but the compute->source ack is missing, and
    // source waits on a never-marked ack edge: deadlock after wave 1.
    pl::pl_netlist pl;
    const pl::gate_id src = pl.add_gate(pl::gate_kind::source, "in");
    const pl::gate_id g = pl.add_gate(pl::gate_kind::compute, "g");
    pl.set_function(g, ~bf::truth_table::variable(1, 0));
    const pl::gate_id snk = pl.add_gate(pl::gate_kind::sink, "out");
    pl.add_data_edge(src, g, 0, false, false);
    pl.add_data_edge(g, snk, 0, false, false);
    pl.add_ack_edge(snk, g, true);
    pl.add_ack_edge(g, src, false);  // never marked: the source starves

    pl_simulator sim(pl);
    try {
        sim.run({{true}, {false}});
        FAIL() << "expected sim::deadlock_error";
    } catch (const deadlock_error& e) {
        // The typed failure is permanent (deterministic pipeline) and its
        // what() carries the liveness diagnostic plus the engine context.
        EXPECT_EQ(e.classify(), failure_class::permanent);
        EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos);
    }
}

TEST(PlSim, SafetyViolationDetectedDynamically) {
    // A producer with NO feedback at all can overrun its consumer: the
    // source fires wave 2 while wave 1's token still sits on the edge.
    pl::pl_netlist pl;
    const pl::gate_id src = pl.add_gate(pl::gate_kind::source, "in");
    const pl::gate_id slow = pl.add_gate(pl::gate_kind::compute, "slow");
    pl.set_function(slow, bf::truth_table::variable(2, 0) &
                              bf::truth_table::variable(2, 1));
    const pl::gate_id late = pl.add_gate(pl::gate_kind::source, "late");
    const pl::gate_id snk = pl.add_gate(pl::gate_kind::sink, "out");
    pl.add_data_edge(src, slow, 0, false, false);
    pl.add_data_edge(late, slow, 1, false, false);
    pl.add_data_edge(slow, snk, 0, false, false);
    pl.add_ack_edge(snk, slow, true);
    pl.add_ack_edge(slow, late, true);
    // note: no ack from `slow` back to `src` — src free-runs.

    pl_simulator sim(pl);
    sim_options opts;
    // The unacked source fires as fast as released waves allow; in pipelined
    // mode it overruns the blocked `slow` gate.
    opts.non_pipelined = false;
    pl_simulator sim2(pl, opts);
    EXPECT_THROW(sim2.run({{true, false}, {true, false}, {true, false}}),
                 invariant_violation);
}

}  // namespace
}  // namespace plee::sim
